package obs

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/perfcount"
)

// RankSummary is the per-rank time decomposition derived from the span
// ring. Comm/Wait are *exclusive* (self) times — nested spans are
// subtracted from their parents — so the three classes partition the
// rank's observed wall window exactly: Compute = Wall - Comm - Wait,
// with any un-spanned time attributed to compute.
type RankSummary struct {
	Rank    int
	WallNS  int64
	CommNS  int64
	WaitNS  int64
	CompNS  int64
	CoverNS int64 // total duration of top-level (depth 0) spans
	Spans   int
	Dropped int64
	ByKind  [numSpanKinds]int64 // exclusive ns per span kind
}

// Coverage returns the fraction of the rank's wall window covered by
// top-level spans (the acceptance criterion asks >= 0.95).
func (s RankSummary) Coverage() float64 {
	if s.WallNS == 0 {
		return 0
	}
	return float64(s.CoverNS) / float64(s.WallNS)
}

// TagSummary is one message stream's aggregate for the report.
type TagSummary struct {
	Comm, Tag   int
	Msgs, Bytes int64
	WaitMeanNS  float64
	WaitP99NS   int64
}

// Report is the aggregated run summary: the per-rank compute/comm/wait
// decomposition, the message-stream table, the gauge ranges, the pool
// utilization and the perfcount-derived effective rates.
type Report struct {
	Ranks  []RankSummary // solver ranks, ascending (driver excluded)
	Driver *RankSummary  // campaign driver track, if recorded
	Steps  int           // 1 + max step stamped on any span
	Tags   []TagSummary  // sorted by bytes, descending
	Gauges map[string]GaugeStat
	Perf   perfcount.Snapshot

	PoolBusyNS, PoolWallNS, PoolCalls, PoolWorkers int64

	// Observability health, surfaced at the top of the report: data
	// silently discarded is the one thing a summary must not hide.
	// SpansDropped totals the spans overwritten across every rank's
	// full ring (BuildReport fills it); EventsDropped counts events
	// overwritten in the bounded run EventLog and Alerts lists the
	// latched telemetry anomaly alerts — both set by the caller, since
	// obs is a leaf package that cannot import the runtime or the
	// telemetry plane.
	SpansDropped  int64
	EventsDropped int64
	Alerts        []string
}

// summarize reduces one rank's ring into a RankSummary. Exclusive times
// are recovered with a stack walk over the spans sorted by start (ties
// broken by depth, parents first): each span's duration is subtracted
// from its innermost enclosing ancestor, which the recorded nesting
// depth identifies unambiguously even when coarse clocks tie.
func summarize(rank int, recs []spanRec, winStart, winEnd int64) RankSummary {
	s := RankSummary{Rank: rank, Spans: len(recs)}
	if winEnd > winStart {
		s.WallNS = winEnd - winStart
	}
	sorted := make([]spanRec, len(recs))
	copy(sorted, recs)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].start != sorted[j].start {
			return sorted[i].start < sorted[j].start
		}
		return sorted[i].depth < sorted[j].depth
	})
	excl := make([]int64, len(sorted))
	var stack []int
	for i, r := range sorted {
		excl[i] = r.dur
		for len(stack) > 0 && sorted[stack[len(stack)-1]].depth >= r.depth {
			stack = stack[:len(stack)-1]
		}
		if len(stack) > 0 {
			excl[stack[len(stack)-1]] -= r.dur
		}
		stack = append(stack, i)
		if r.depth == 0 {
			s.CoverNS += r.dur
		}
	}
	for i, r := range sorted {
		e := excl[i]
		if e < 0 {
			e = 0 // clock ties can over-subtract by a few ns; clamp
		}
		s.ByKind[r.kind] += e
		switch ClassOf(r.kind) {
		case ClassComm:
			s.CommNS += e
		case ClassWait:
			s.WaitNS += e
		}
	}
	s.CompNS = s.WallNS - s.CommNS - s.WaitNS
	if s.CompNS < 0 {
		// Spans recorded outside the Open/Close window (should not
		// happen); fold the excess into the wall so classes still
		// partition it.
		s.WallNS -= s.CompNS
		s.CompNS = 0
	}
	return s
}

// BuildReport aggregates the recorder into a Report. perf should be the
// run's perfcount interval (end snapshot minus the snapshot taken at
// recorder creation). Call after the recorded runs have returned.
func (r *Recorder) BuildReport(perf perfcount.Snapshot) *Report {
	if r == nil {
		return nil
	}
	rep := &Report{Gauges: map[string]GaugeStat{}, Perf: perf}
	for _, rank := range r.Ranks() {
		rr := r.ranks[rank]
		sum := summarize(rank, rr.spans(), rr.winStart, rr.winEnd)
		sum.Dropped = rr.dropped
		if rank == DriverRank {
			d := sum
			rep.Driver = &d
		} else {
			rep.Ranks = append(rep.Ranks, sum)
		}
		rep.SpansDropped += sum.Dropped
		if int(rr.maxStep)+1 > rep.Steps {
			rep.Steps = int(rr.maxStep) + 1
		}
		for name, g := range rr.gauges {
			m, ok := rep.Gauges[name]
			if !ok {
				rep.Gauges[name] = *g
				continue
			}
			if g.Min < m.Min {
				m.Min = g.Min
			}
			if g.Max > m.Max {
				m.Max = g.Max
			}
			m.Sum += g.Sum
			m.N += g.N
			m.Last = g.Last
			rep.Gauges[name] = m
		}
	}
	for k, st := range r.TagStats() {
		rep.Tags = append(rep.Tags, TagSummary{
			Comm: k.Comm, Tag: k.Tag,
			Msgs: st.Msgs.Load(), Bytes: st.Bytes.Load(),
			WaitMeanNS: st.Wait.Mean(), WaitP99NS: st.Wait.Quantile(0.99),
		})
	}
	sort.Slice(rep.Tags, func(i, j int) bool {
		if rep.Tags[i].Bytes != rep.Tags[j].Bytes {
			return rep.Tags[i].Bytes > rep.Tags[j].Bytes
		}
		if rep.Tags[i].Comm != rep.Tags[j].Comm {
			return rep.Tags[i].Comm < rep.Tags[j].Comm
		}
		return rep.Tags[i].Tag < rep.Tags[j].Tag
	})
	rep.PoolBusyNS = r.pool.BusyNS.Load()
	rep.PoolWallNS = r.pool.WallNS.Load()
	rep.PoolCalls = r.pool.Calls.Load()
	rep.PoolWorkers = r.pool.Workers.Load()
	return rep
}

// ClassPercents returns the run-wide compute/comm/wait percentages,
// aggregated over all solver ranks. They sum to 100 by construction
// (the three classes partition each rank's wall window).
func (rep *Report) ClassPercents() (compute, comm, wait float64) {
	var wall, c, w int64
	for _, s := range rep.Ranks {
		wall += s.WallNS
		c += s.CommNS
		w += s.WaitNS
	}
	if wall == 0 {
		return 0, 0, 0
	}
	comm = 100 * float64(c) / float64(wall)
	wait = 100 * float64(w) / float64(wall)
	compute = 100 - comm - wait
	return compute, comm, wait
}

// minMaxAvg computes the report's three columns over the solver ranks.
func (rep *Report) minMaxAvg(get func(RankSummary) float64) (mn float64, mnAt int, mx float64, mxAt int, avg float64) {
	if len(rep.Ranks) == 0 {
		return 0, 0, 0, 0, 0
	}
	mn, mx = get(rep.Ranks[0]), get(rep.Ranks[0])
	mnAt, mxAt = rep.Ranks[0].Rank, rep.Ranks[0].Rank
	var sum float64
	for _, s := range rep.Ranks {
		v := get(s)
		sum += v
		if v < mn {
			mn, mnAt = v, s.Rank
		}
		if v > mx {
			mx, mxAt = v, s.Rank
		}
	}
	return mn, mnAt, mx, mxAt, sum / float64(len(rep.Ranks))
}

const nsPerSec = 1e9

// Format renders the report in the spirit of the Earth Simulator's
// MPIPROGINF List 1: per-rank Min/Max/Average columns, then overall
// totals and effective rates.
func (rep *Report) Format() string {
	var b strings.Builder
	b.WriteString("Run Information (live solver):\n")
	b.WriteString("==============================\n")
	b.WriteString("Note: measured by internal/obs from rank start till rank finish.\n")
	// Health first: dropped observability data and anomaly alerts must
	// not be buried under the timing tables.
	spanNote, eventNote := "", ""
	if rep.SpansDropped > 0 {
		spanNote = "  ** DATA LOST: raise obs.Config.SpanCap **"
	}
	if rep.EventsDropped > 0 {
		eventNote = "  ** DATA LOST: raise the EventLog capacity **"
	}
	fmt.Fprintf(&b, "%-28s: %14d%s\n", "Spans Dropped (all ranks)", rep.SpansDropped, spanNote)
	fmt.Fprintf(&b, "%-28s: %14d%s\n", "Events Dropped", rep.EventsDropped, eventNote)
	fmt.Fprintf(&b, "%-28s: %14d\n", "Telemetry Alerts", len(rep.Alerts))
	for _, a := range rep.Alerts {
		fmt.Fprintf(&b, "  ALERT %s\n", a)
	}
	fmt.Fprintf(&b, "Per-rank data of %d processes:%16s[rank]%16s[rank]%12s\n",
		len(rep.Ranks), "Min", "Max", "Average")
	b.WriteString("=============================\n")
	row := func(name string, get func(RankSummary) float64, format string) {
		mn, mnAt, mx, mxAt, avg := rep.minMaxAvg(get)
		fmt.Fprintf(&b, "%-28s: "+format+" [%d] "+format+" [%d] "+format+"\n",
			name, mn, mnAt, mx, mxAt, avg)
	}
	row("Real Time (sec)", func(s RankSummary) float64 { return float64(s.WallNS) / nsPerSec }, "%14.6f")
	row("Compute Time (sec)", func(s RankSummary) float64 { return float64(s.CompNS) / nsPerSec }, "%14.6f")
	row("Comm Time (sec)", func(s RankSummary) float64 { return float64(s.CommNS) / nsPerSec }, "%14.6f")
	row("Wait Time (sec)", func(s RankSummary) float64 { return float64(s.WaitNS) / nsPerSec }, "%14.6f")
	row("Span Coverage (%)", func(s RankSummary) float64 { return 100 * s.Coverage() }, "%14.3f")
	row("Spans Recorded", func(s RankSummary) float64 { return float64(s.Spans) }, "%14.0f")
	row("Spans Dropped", func(s RankSummary) float64 { return float64(s.Dropped) }, "%14.0f")

	compute, comm, wait := rep.ClassPercents()
	b.WriteString("\nOverall Data:\n")
	b.WriteString("=============\n")
	fmt.Fprintf(&b, "%-28s: %14d\n", "Steps", rep.Steps)
	fmt.Fprintf(&b, "%-28s: %14.3f\n", "Compute (%)", compute)
	fmt.Fprintf(&b, "%-28s: %14.3f\n", "Comm (%)", comm)
	fmt.Fprintf(&b, "%-28s: %14.3f\n", "Wait (%)", wait)
	fmt.Fprintf(&b, "%-28s: %14d\n", "FLOP Count", rep.Perf.Flops)
	fmt.Fprintf(&b, "%-28s: %14.3f\n", "Average Vector Length", rep.Perf.AverageVectorLength())
	fmt.Fprintf(&b, "%-28s: %14.3f\n", "Vector Operation Ratio (%)", 100*rep.Perf.VectorOperationRatio())
	fmt.Fprintf(&b, "%-28s: %14d\n", "Comm Bytes", rep.Perf.CommBytes)
	fmt.Fprintf(&b, "%-28s: %14d\n", "Comm Messages", rep.Perf.CommMsgs)
	if rep.Steps > 0 {
		fmt.Fprintf(&b, "%-28s: %14.1f\n", "Comm Bytes / Step", float64(rep.Perf.CommBytes)/float64(rep.Steps))
		fmt.Fprintf(&b, "%-28s: %14.1f\n", "Comm Messages / Step", float64(rep.Perf.CommMsgs)/float64(rep.Steps))
	}
	// Effective rate: aggregate flops over the average rank wall time —
	// the software analogue of List 1's "GFLOPS (rel. to User Time)".
	if _, _, _, _, avgWall := rep.minMaxAvg(func(s RankSummary) float64 { return float64(s.WallNS) / nsPerSec }); avgWall > 0 {
		fmt.Fprintf(&b, "%-28s: %14.3f\n", "Effective MFLOPS", float64(rep.Perf.Flops)/avgWall/1e6)
	}
	if rep.PoolWorkers > 0 {
		util := 0.0
		if rep.PoolWallNS > 0 {
			util = float64(rep.PoolBusyNS) / (float64(rep.PoolWallNS) * float64(rep.PoolWorkers))
		}
		fmt.Fprintf(&b, "%-28s: %14.3f (width %d, %d regions)\n", "Pool Utilization", util, rep.PoolWorkers, rep.PoolCalls)
	}

	if len(rep.Gauges) > 0 {
		b.WriteString("\nGauges:\n")
		b.WriteString("=======\n")
		names := make([]string, 0, len(rep.Gauges))
		for n := range rep.Gauges {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintf(&b, "%-12s %14s %14s %14s %8s\n", "name", "min", "max", "mean", "n")
		for _, n := range names {
			g := rep.Gauges[n]
			fmt.Fprintf(&b, "%-12s %14.6g %14.6g %14.6g %8d\n", n, g.Min, g.Max, g.Mean(), g.N)
		}
	}

	if len(rep.Tags) > 0 {
		b.WriteString("\nMessage Streams (by bytes):\n")
		b.WriteString("===========================\n")
		fmt.Fprintf(&b, "%6s %6s %10s %14s %14s %14s\n", "comm", "tag", "msgs", "bytes", "wait.mean(us)", "wait.p99(us)")
		for _, t := range rep.Tags {
			fmt.Fprintf(&b, "%6d %6d %10d %14d %14.1f %14.1f\n",
				t.Comm, t.Tag, t.Msgs, t.Bytes, t.WaitMeanNS/1e3, float64(t.WaitP99NS)/1e3)
		}
	}

	if rep.Driver != nil {
		b.WriteString("\nDriver Track:\n")
		b.WriteString("=============\n")
		fmt.Fprintf(&b, "%-28s: %14.6f\n", "Real Time (sec)", float64(rep.Driver.WallNS)/nsPerSec)
		fmt.Fprintf(&b, "%-28s: %14.6f\n", "Checkpoint Write (sec)", float64(rep.Driver.ByKind[SpanCkptWrite])/nsPerSec)
		fmt.Fprintf(&b, "%-28s: %14.6f\n", "Checkpoint Read (sec)", float64(rep.Driver.ByKind[SpanCkptRead])/nsPerSec)
	}
	return b.String()
}
