package obs

import (
	"strings"
	"testing"

	"repro/internal/perfcount"
)

// mk builds a span record with explicit times for the summarize tests.
func mk(start, dur int64, kind SpanKind, depth uint8, step int32) spanRec {
	return spanRec{start: start, dur: dur, step: step, kind: kind, depth: depth}
}

func TestSummarizeExclusiveTimes(t *testing.T) {
	// One rank, wall [0,100):
	//   step [0,100) depth 0           compute container
	//     rhs [10,60) depth 1          compute container
	//       halo.wait [20,30) depth 2  wait
	//     halo.pack [60,70) depth 1    comm
	recs := []spanRec{
		mk(20, 10, SpanHaloWait, 2, 0),
		mk(10, 50, SpanRHS, 1, 0),
		mk(60, 10, SpanHaloPack, 1, 0),
		mk(0, 100, SpanStep, 0, 0),
	}
	s := summarize(0, recs, 0, 100)
	if s.WallNS != 100 {
		t.Fatalf("wall = %d", s.WallNS)
	}
	if s.WaitNS != 10 {
		t.Fatalf("wait = %d, want 10 (halo.wait self time)", s.WaitNS)
	}
	if s.CommNS != 10 {
		t.Fatalf("comm = %d, want 10 (halo.pack self time)", s.CommNS)
	}
	if s.CompNS != 80 {
		t.Fatalf("compute = %d, want 80", s.CompNS)
	}
	if s.CoverNS != 100 || s.Coverage() != 1.0 {
		t.Fatalf("coverage = %d (%.2f), want full", s.CoverNS, s.Coverage())
	}
	// Exclusive per kind: step excludes its children, 100-50-10 = 40;
	// rhs excludes the wait, 50-10 = 40.
	if s.ByKind[SpanStep] != 40 || s.ByKind[SpanRHS] != 40 {
		t.Fatalf("ByKind step=%d rhs=%d, want 40/40", s.ByKind[SpanStep], s.ByKind[SpanRHS])
	}
}

func TestSummarizeTiedStarts(t *testing.T) {
	// Parent and child begin at the same coarse timestamp; depth must
	// disambiguate (parent first), so the child still subtracts.
	recs := []spanRec{
		mk(0, 40, SpanHaloWait, 1, 0),
		mk(0, 100, SpanStep, 0, 0),
	}
	s := summarize(0, recs, 0, 100)
	if s.WaitNS != 40 {
		t.Fatalf("wait = %d, want 40", s.WaitNS)
	}
	if s.ByKind[SpanStep] != 60 {
		t.Fatalf("step self = %d, want 60", s.ByKind[SpanStep])
	}
}

func TestClassPercentsSumTo100(t *testing.T) {
	rep := &Report{Ranks: []RankSummary{
		{Rank: 0, WallNS: 1000, CommNS: 300, WaitNS: 200, CompNS: 500},
		{Rank: 1, WallNS: 900, CommNS: 100, WaitNS: 400, CompNS: 400},
	}}
	c, m, w := rep.ClassPercents()
	if sum := c + m + w; sum < 99.999 || sum > 100.001 {
		t.Fatalf("percentages sum to %g, want 100", sum)
	}
	if c <= 0 || m <= 0 || w <= 0 {
		t.Fatalf("degenerate split: compute=%g comm=%g wait=%g", c, m, w)
	}
}

func TestBuildReportEndToEnd(t *testing.T) {
	r := New(Config{})
	for rank := 0; rank < 2; rank++ {
		rr := r.RankFor(rank)
		rr.Open()
		for step := 0; step < 3; step++ {
			rr.SetStep(step)
			sp := rr.Begin(SpanStep)
			w := rr.Begin(SpanHaloWait)
			w.End()
			sp.End()
			rr.SetGauge("dt", 0.5)
		}
		rr.Close()
	}
	r.CommDelivered(0, 7, 256)
	r.CommWaited(0, 7, 1500)
	rep := r.BuildReport(perfcount.Snapshot{Flops: 1000, CommBytes: 2048, CommMsgs: 8})
	if len(rep.Ranks) != 2 {
		t.Fatalf("ranks = %d", len(rep.Ranks))
	}
	if rep.Steps != 3 {
		t.Fatalf("steps = %d, want 3", rep.Steps)
	}
	c, m, w := rep.ClassPercents()
	if sum := c + m + w; sum < 99.0 || sum > 101.0 {
		t.Fatalf("percent sum = %g", sum)
	}
	g, ok := rep.Gauges["dt"]
	if !ok || g.N != 6 {
		t.Fatalf("dt gauge merged = %+v ok=%v, want N=6", g, ok)
	}
	if len(rep.Tags) != 1 || rep.Tags[0].Bytes != 256 {
		t.Fatalf("tags = %+v", rep.Tags)
	}
	out := rep.Format()
	for _, want := range []string{
		"Run Information", "Compute (%)", "Comm (%)", "Wait (%)",
		"FLOP Count", "Message Streams", "Gauges", "dt",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestBuildReportDriverTrack(t *testing.T) {
	r := New(Config{})
	d := r.Driver()
	d.Open()
	sp := d.Begin(SpanCkptWrite)
	sp.End()
	d.Close()
	rr := r.RankFor(0)
	rr.Open()
	rr.Close()
	rep := r.BuildReport(perfcount.Snapshot{})
	if rep.Driver == nil {
		t.Fatal("driver track not summarized")
	}
	if len(rep.Ranks) != 1 || rep.Ranks[0].Rank != 0 {
		t.Fatalf("solver ranks = %+v (driver must be excluded)", rep.Ranks)
	}
	if !strings.Contains(rep.Format(), "Driver Track") {
		t.Fatal("report missing driver section")
	}
}
