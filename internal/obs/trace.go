package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Instant is a point event merged into the exported trace (Perfetto
// renders them as markers): fault injections, retransmissions,
// heartbeat state changes, campaign segment boundaries. The runtime's
// EventLog entries are converted to Instants by the caller (obs cannot
// import the runtime package), using At offsets measured from the
// recorder's Epoch.
type Instant struct {
	At     time.Duration // offset from the recorder epoch
	Name   string        // e.g. "fault.drop", "hb.confirm", "note"
	Detail string        // free-form payload, shown in the args pane
}

// traceEvent is one Chrome trace_event entry. Only the fields the
// format needs are present; ts/dur are microseconds.
type traceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// traceFile is the object form of the trace_event format ({"traceEvents":
// [...]}); Perfetto and chrome://tracing both accept it.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// tidFor maps a rank to its trace track: the driver pseudo-rank is
// track 0, rank r is track r+1, so tracks sort driver-first then by
// rank.
func tidFor(rank int) int {
	if rank == DriverRank {
		return 0
	}
	return rank + 1
}

func trackName(rank int) string {
	if rank == DriverRank {
		return "driver"
	}
	return fmt.Sprintf("rank %d", rank)
}

const usPerNS = 1e-3

// TraceEvents flattens the recorder's spans (plus the given instants)
// into Chrome trace_event entries, sorted by timestamp. Call after the
// recorded runs have returned.
func (r *Recorder) TraceEvents(instants []Instant) []traceEvent {
	if r == nil {
		return nil
	}
	var evs []traceEvent
	for _, rank := range r.Ranks() {
		rr := r.ranks[rank]
		tid := tidFor(rank)
		evs = append(evs, traceEvent{
			Name:  "thread_name",
			Phase: "M",
			PID:   0,
			TID:   tid,
			Args:  map[string]any{"name": trackName(rank)},
		})
		for _, s := range rr.spans() {
			evs = append(evs, traceEvent{
				Name:  s.kind.String(),
				Cat:   className(ClassOf(s.kind)),
				Phase: "X",
				TS:    float64(s.start) * usPerNS,
				Dur:   float64(s.dur) * usPerNS,
				PID:   0,
				TID:   tid,
				Args:  map[string]any{"step": int(s.step)},
			})
		}
	}
	for _, in := range instants {
		ev := traceEvent{
			Name:  in.Name,
			Cat:   "event",
			Phase: "i",
			TS:    float64(in.At.Nanoseconds()) * usPerNS,
			PID:   0,
			TID:   0,
			Scope: "g",
		}
		if in.Detail != "" {
			ev.Args = map[string]any{"detail": in.Detail}
		}
		evs = append(evs, ev)
	}
	sort.SliceStable(evs, func(i, j int) bool {
		// Metadata first, then by timestamp.
		if (evs[i].Phase == "M") != (evs[j].Phase == "M") {
			return evs[i].Phase == "M"
		}
		return evs[i].TS < evs[j].TS
	})
	return evs
}

func className(c Class) string {
	switch c {
	case ClassComm:
		return "comm"
	case ClassWait:
		return "wait"
	}
	return "compute"
}

// WriteTrace writes the run's timeline as Chrome trace_event JSON
// (object form), loadable in Perfetto / chrome://tracing: one track per
// rank plus a driver track, span durations as complete events, and the
// given instants (fault/heartbeat/segment events) as global markers.
func (r *Recorder) WriteTrace(w io.Writer, instants []Instant) error {
	if r == nil {
		return fmt.Errorf("obs: WriteTrace on nil Recorder")
	}
	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{
		TraceEvents:     r.TraceEvents(instants),
		DisplayTimeUnit: "ms",
	})
}
