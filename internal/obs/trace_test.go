package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestWriteTraceShape(t *testing.T) {
	r := New(Config{})
	for rank := 0; rank < 2; rank++ {
		rr := r.RankFor(rank)
		rr.Open()
		rr.SetStep(0)
		sp := rr.Begin(SpanStep)
		in := rr.Begin(SpanHaloWait)
		in.End()
		sp.End()
		rr.Close()
	}
	instants := []Instant{
		{At: 5 * time.Microsecond, Name: "fault.drop", Detail: "comm=0 src=0 dst=1"},
		{At: 9 * time.Microsecond, Name: "hb.confirm"},
	}
	var buf bytes.Buffer
	if err := r.WriteTrace(&buf, instants); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var meta, complete, instant int
	tracks := map[float64]bool{}
	for _, ev := range tf.TraceEvents {
		switch ev["ph"] {
		case "M":
			meta++
		case "X":
			complete++
			tracks[ev["tid"].(float64)] = true
			if _, ok := ev["args"].(map[string]any)["step"]; !ok {
				t.Fatal("complete event missing step arg")
			}
		case "i":
			instant++
			if ev["s"] != "g" {
				t.Fatalf("instant scope = %v, want g", ev["s"])
			}
		}
	}
	if meta != 2 {
		t.Fatalf("thread_name metadata events = %d, want 2", meta)
	}
	if complete != 4 {
		t.Fatalf("complete events = %d, want 4", complete)
	}
	if instant != 2 {
		t.Fatalf("instant events = %d, want 2", instant)
	}
	// Rank r is track r+1 (the driver reserves track 0).
	if !tracks[1] || !tracks[2] {
		t.Fatalf("tracks = %v, want {1,2}", tracks)
	}
}

func TestWriteTraceNil(t *testing.T) {
	var r *Recorder
	var buf bytes.Buffer
	if err := r.WriteTrace(&buf, nil); err == nil {
		t.Fatal("nil recorder must refuse to write a trace")
	}
}

func TestDriverTrack(t *testing.T) {
	r := New(Config{})
	d := r.Driver()
	d.Open()
	sp := d.Begin(SpanCkptWrite)
	sp.End()
	d.Close()
	evs := r.TraceEvents(nil)
	foundName := false
	for _, ev := range evs {
		if ev.Phase == "M" && ev.TID == 0 {
			if ev.Args["name"] != "driver" {
				t.Fatalf("driver track name = %v", ev.Args["name"])
			}
			foundName = true
		}
		if ev.Phase == "X" && ev.TID != 0 {
			t.Fatalf("driver span on track %d, want 0", ev.TID)
		}
	}
	if !foundName {
		t.Fatal("no driver thread_name metadata")
	}
}
