// Package overset implements the internal boundary condition of the
// Yin-Yang grid: the nodes on the angular rim of each component grid take
// their values by bilinear interpolation from the partner grid, following
// the general overset (Chimera) methodology.
//
// Because the Yin->Yang and Yang->Yin coordinate transforms are the same
// map (eq. 1), a single interpolation plan describes both directions: any
// interaction from a grid point on Yin to a grid point on Yang is exactly
// the same as that from Yang to Yin. The plan is purely horizontal — a
// rim node receives a full radial column from the partner's surrounding
// four columns — so the interpolation inner loop runs over the radial
// (vectorization) dimension.
package overset

import (
	"fmt"
	"math"

	"repro/internal/coords"
	"repro/internal/field"
	"repro/internal/grid"
	"repro/internal/par"
	"repro/internal/perfcount"
)

// NodeID identifies a rim node by its global angular indices on the
// receiving panel.
type NodeID struct {
	J, K int // global node indices in theta and phi
}

// Target couples one receiver rim node with its donor cell on the partner
// panel, in global angular indices.
type Target struct {
	Recv NodeID // receiver rim node
	// DJ, DK are the global indices of the donor cell's lower corner;
	// the cell spans nodes (DJ..DJ+1) x (DK..DK+1).
	DJ, DK int
	// W holds the bilinear weights for donors (DJ,DK), (DJ+1,DK),
	// (DJ,DK+1), (DJ+1,DK+1).
	W [4]float64
	// Rot rotates interpolated tangential vector components from the
	// donor frame into the receiver frame.
	Rot coords.VecRotation
}

// RimNodes lists the global angular indices of the internal-boundary rim
// of a panel: the first and last rows in theta and columns in phi.
func RimNodes(s grid.Spec) []NodeID {
	var nodes []NodeID
	for k := 0; k < s.Np; k++ {
		nodes = append(nodes, NodeID{0, k}, NodeID{s.Nt - 1, k})
	}
	for j := 1; j < s.Nt-1; j++ {
		nodes = append(nodes, NodeID{j, 0}, NodeID{j, s.Np - 1})
	}
	return nodes
}

// MakeTarget builds the donor cell, weights and rotation for a single rim
// node. It returns an error if the node's image falls outside the partner
// panel (which cannot happen for the basic Yin-Yang grid; the check guards
// grid-construction bugs).
func MakeTarget(s grid.Spec, n NodeID) (Target, error) {
	dt, dp := s.Dt(), s.Dp()
	theta := grid.ThetaMin + float64(n.J)*dt
	phi := grid.PhiMin + float64(n.K)*dp
	td, pd := coords.YinYangAngles(theta, phi)
	const tol = 1e-9
	if !grid.Contains(td, pd, tol) {
		return Target{}, fmt.Errorf("overset: rim node %+v maps to (%v,%v) outside partner", n, td, pd)
	}
	// Donor cell containing (td, pd). The cell is clamped away from the
	// partner's own rim rows/columns: the boundary curves of the two
	// panels cross at isolated points, and there the containing cell
	// would abut partner rim nodes, making rim values depend on partner
	// rim values (an implicit coupling). Clamping to interior donors
	// turns those few targets into one-cell linear extrapolations, which
	// keeps the exchange fully explicit at the same (second) order.
	fj := (td - grid.ThetaMin) / dt
	fk := (pd - grid.PhiMin) / dp
	dj := clampInt(int(math.Floor(fj)), 1, s.Nt-3)
	dk := clampInt(int(math.Floor(fk)), 1, s.Np-3)
	aj := fj - float64(dj)
	ak := fk - float64(dk)
	t := Target{
		Recv: n,
		DJ:   dj,
		DK:   dk,
		W: [4]float64{
			(1 - aj) * (1 - ak),
			aj * (1 - ak),
			(1 - aj) * ak,
			aj * ak,
		},
		Rot: coords.RotationAt(td, pd),
	}
	return t, nil
}

func clampInt(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Plan holds the full set of interpolation targets for one direction of
// the exchange; the identical plan serves the other direction.
type Plan struct {
	Spec    grid.Spec
	Targets []Target
}

// NewPlan builds the serial full-panel exchange plan for spec s.
func NewPlan(s grid.Spec) (*Plan, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	nodes := RimNodes(s)
	p := &Plan{Spec: s, Targets: make([]Target, 0, len(nodes))}
	for _, n := range nodes {
		t, err := MakeTarget(s, n)
		if err != nil {
			return nil, err
		}
		p.Targets = append(p.Targets, t)
	}
	return p, nil
}

// gatherScalar interpolates the donor columns for target t from donor
// field df (whose patch has halo h and zero offsets, i.e. a full panel)
// into buf, one value per padded radial index.
func gatherScalar(df *field.Scalar, t Target, h int, buf []float64) {
	r0 := df.Row(t.DJ+h, t.DK+h)
	r1 := df.Row(t.DJ+1+h, t.DK+h)
	r2 := df.Row(t.DJ+h, t.DK+1+h)
	r3 := df.Row(t.DJ+1+h, t.DK+1+h)
	w := t.W
	for i := range buf {
		buf[i] = w[0]*r0[i] + w[1]*r1[i] + w[2]*r2[i] + w[3]*r3[i]
	}
}

// Exchanger applies the internal boundary condition between the two
// full-panel fields of a serial Yin-Yang solver. Both directions are
// gathered before either is scattered, so the exchange is symmetric and
// independent of panel order.
type Exchanger struct {
	plan *Plan
	h    int
	nrP  int
	pool *par.Pool
	// staging buffers: per target, one radial column (x3 for vectors)
	a, b [][3][]float64
}

// SetPool routes the gather (interpolation) loops through the worker
// pool; each target owns disjoint staging columns, so the parallel
// gather is bit-identical to the serial one. nil restores serial.
func (e *Exchanger) SetPool(pool *par.Pool) { e.pool = pool }

// NewExchanger builds an exchanger for full-panel fields with halo width
// h over the plan's spec.
func NewExchanger(plan *Plan, h int) *Exchanger {
	nrP := plan.Spec.Nr + 2*h
	e := &Exchanger{plan: plan, h: h, nrP: nrP}
	e.a = make([][3][]float64, len(plan.Targets))
	e.b = make([][3][]float64, len(plan.Targets))
	for i := range e.a {
		for c := 0; c < 3; c++ {
			e.a[i][c] = make([]float64, nrP)
			e.b[i][c] = make([]float64, nrP)
		}
	}
	return e
}

func (e *Exchanger) count(components int) {
	n := int64(len(e.plan.Targets)) * int64(e.nrP) * int64(components)
	perfcount.AddFlops(n * 7) // 4 mults + 3 adds per interpolated value
	perfcount.AddVectorLoops(int64(len(e.plan.Targets))*int64(components), n)
}

// ExchangeScalar sets the rim values of each panel's scalar field from
// the partner panel.
func (e *Exchanger) ExchangeScalar(yin, yang *field.Scalar) {
	h := e.h
	e.pool.For(len(e.plan.Targets), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			t := e.plan.Targets[i]
			gatherScalar(yang, t, h, e.a[i][0]) // Yin rim <- Yang donors
			gatherScalar(yin, t, h, e.b[i][0])  // Yang rim <- Yin donors
		}
	})
	for i, t := range e.plan.Targets {
		copy(yin.Row(t.Recv.J+h, t.Recv.K+h), e.a[i][0])
		copy(yang.Row(t.Recv.J+h, t.Recv.K+h), e.b[i][0])
	}
	e.count(1)
}

// ExchangeVector sets the rim values of each panel's vector field from
// the partner panel, rotating tangential components between the frames.
// The radial component is frame-invariant.
func (e *Exchanger) ExchangeVector(yin, yang *field.Vector) {
	e.pool.For(len(e.plan.Targets), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			t := e.plan.Targets[i]
			e.gatherVector(yang, t, e.a[i])
			e.gatherVector(yin, t, e.b[i])
		}
	})
	for i, t := range e.plan.Targets {
		e.scatterVector(yin, t, e.a[i])
		e.scatterVector(yang, t, e.b[i])
	}
	e.count(3)
	// Rotation: 4 flops per tangential pair per radial node.
	perfcount.AddFlops(int64(len(e.plan.Targets)) * int64(e.nrP) * 8)
}

func (e *Exchanger) gatherVector(dv *field.Vector, t Target, buf [3][]float64) {
	gatherScalar(dv.R, t, e.h, buf[0])
	gatherScalar(dv.T, t, e.h, buf[1])
	gatherScalar(dv.P, t, e.h, buf[2])
	// Rotate tangential components donor -> receiver in place.
	bt, bp := buf[1], buf[2]
	for i := range bt {
		bt[i], bp[i] = t.Rot.Apply(bt[i], bp[i])
	}
}

func (e *Exchanger) scatterVector(rv *field.Vector, t Target, buf [3][]float64) {
	h := e.h
	copy(rv.R.Row(t.Recv.J+h, t.Recv.K+h), buf[0])
	copy(rv.T.Row(t.Recv.J+h, t.Recv.K+h), buf[1])
	copy(rv.P.Row(t.Recv.J+h, t.Recv.K+h), buf[2])
}

// InterpAt evaluates the bilinear interpolant of full-panel field f of
// patch p at angular point (theta, phi) and padded radial index i. It is
// used by diagnostics and visualization to sample a panel at arbitrary
// angles; theta and phi must lie within the panel footprint.
func InterpAt(p *grid.Patch, f *field.Scalar, theta, phi float64, i int) float64 {
	h := p.H
	fj := (theta - grid.ThetaMin) / p.Dt
	fk := (phi - grid.PhiMin) / p.Dp
	dj := clampInt(int(math.Floor(fj)), 0, p.Spec.Nt-2)
	dk := clampInt(int(math.Floor(fk)), 0, p.Spec.Np-2)
	aj := fj - float64(dj)
	ak := fk - float64(dk)
	perfcount.AddScalarOps(10)
	return (1-aj)*(1-ak)*f.At(i, dj+h, dk+h) +
		aj*(1-ak)*f.At(i, dj+1+h, dk+h) +
		(1-aj)*ak*f.At(i, dj+h, dk+1+h) +
		aj*ak*f.At(i, dj+1+h, dk+1+h)
}

// --- Higher-order interpolation -------------------------------------
//
// The paper's second-order solver needs only bilinear rim interpolation,
// but later Yin-Yang work (e.g. the community benchmarks of Yoshida &
// Kageyama) uses third-order interpolation to keep the internal boundary
// from limiting accuracy. Target3 is the biquadratic (3x3 donor)
// variant; its rim error converges at third order.

// Target3 couples a rim node with a 3x3 donor block and separable
// quadratic Lagrange weights.
type Target3 struct {
	Recv   NodeID
	DJ, DK int        // lower corner of the 3x3 donor block
	WJ, WK [3]float64 // separable Lagrange weights
	Rot    coords.VecRotation
}

// MakeTarget3 builds the biquadratic target for a rim node.
func MakeTarget3(s grid.Spec, n NodeID) (Target3, error) {
	dt, dp := s.Dt(), s.Dp()
	theta := grid.ThetaMin + float64(n.J)*dt
	phi := grid.PhiMin + float64(n.K)*dp
	td, pd := coords.YinYangAngles(theta, phi)
	const tol = 1e-9
	if !grid.Contains(td, pd, tol) {
		return Target3{}, fmt.Errorf("overset: rim node %+v maps outside partner", n)
	}
	fj := (td - grid.ThetaMin) / dt
	fk := (pd - grid.PhiMin) / dp
	// Center the 3-point stencil on the nearest node, clamped so the
	// block avoids the partner rim (explicitness, as for bilinear).
	cj := clampInt(int(math.Round(fj)), 2, s.Nt-3)
	ck := clampInt(int(math.Round(fk)), 2, s.Np-3)
	t3 := Target3{
		Recv: n,
		DJ:   cj - 1,
		DK:   ck - 1,
		WJ:   lagrange3(fj - float64(cj-1)),
		WK:   lagrange3(fk - float64(ck-1)),
		Rot:  coords.RotationAt(td, pd),
	}
	return t3, nil
}

// lagrange3 returns quadratic Lagrange weights for nodes at offsets
// 0, 1, 2 evaluated at x (in node units from the first node).
func lagrange3(x float64) [3]float64 {
	return [3]float64{
		(x - 1) * (x - 2) / 2,
		-x * (x - 2),
		x * (x - 1) / 2,
	}
}

// Plan3 is the biquadratic analogue of Plan.
type Plan3 struct {
	Spec    grid.Spec
	Targets []Target3
}

// NewPlan3 builds the full-panel biquadratic exchange plan.
func NewPlan3(s grid.Spec) (*Plan3, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.Nt < 7 || s.Np < 7 {
		return nil, fmt.Errorf("overset: biquadratic plan needs at least 7 nodes per angular dimension")
	}
	nodes := RimNodes(s)
	p := &Plan3{Spec: s, Targets: make([]Target3, 0, len(nodes))}
	for _, n := range nodes {
		t, err := MakeTarget3(s, n)
		if err != nil {
			return nil, err
		}
		p.Targets = append(p.Targets, t)
	}
	return p, nil
}

// gatherScalar3 interpolates the donor columns for target t into buf.
func gatherScalar3(df *field.Scalar, t Target3, h int, buf []float64) {
	for i := range buf {
		buf[i] = 0
	}
	for a := 0; a < 3; a++ {
		for b := 0; b < 3; b++ {
			w := t.WJ[a] * t.WK[b]
			//yyvet:ignore float-eq flop-saving skip of exactly-zero quadratic weights (weights are sign-indefinite)
			if w == 0 {
				continue
			}
			row := df.Row(t.DJ+a+h, t.DK+b+h)
			for i := range buf {
				buf[i] += w * row[i]
			}
		}
	}
}

// Exchanger3 applies the biquadratic internal boundary condition between
// two full-panel fields.
type Exchanger3 struct {
	plan *Plan3
	h    int
	nrP  int
	a, b [][]float64
}

// NewExchanger3 builds the biquadratic exchanger.
func NewExchanger3(plan *Plan3, h int) *Exchanger3 {
	nrP := plan.Spec.Nr + 2*h
	e := &Exchanger3{plan: plan, h: h, nrP: nrP}
	e.a = make([][]float64, len(plan.Targets))
	e.b = make([][]float64, len(plan.Targets))
	for i := range e.a {
		e.a[i] = make([]float64, nrP)
		e.b[i] = make([]float64, nrP)
	}
	return e
}

// ExchangeScalar sets rim values of both panels biquadratically.
func (e *Exchanger3) ExchangeScalar(yin, yang *field.Scalar) {
	h := e.h
	for i, t := range e.plan.Targets {
		gatherScalar3(yang, t, h, e.a[i])
		gatherScalar3(yin, t, h, e.b[i])
	}
	for i, t := range e.plan.Targets {
		copy(yin.Row(t.Recv.J+h, t.Recv.K+h), e.a[i])
		copy(yang.Row(t.Recv.J+h, t.Recv.K+h), e.b[i])
	}
	n := int64(len(e.plan.Targets)) * int64(e.nrP)
	perfcount.AddFlops(n * 17)
	perfcount.AddVectorLoops(int64(len(e.plan.Targets))*9, n*9)
}

// ExchangeVector sets rim values of both panels' vector fields
// biquadratically, rotating tangential components between frames.
func (e *Exchanger3) ExchangeVector(yin, yang *field.Vector) {
	n := len(e.plan.Targets)
	// Stage both directions fully before scattering.
	stage := func(dv *field.Vector, out [][]float64) {
		for i, t := range e.plan.Targets {
			base := i * 3
			gatherScalar3(dv.R, t, e.h, out[base])
			gatherScalar3(dv.T, t, e.h, out[base+1])
			gatherScalar3(dv.P, t, e.h, out[base+2])
			bt, bp := out[base+1], out[base+2]
			for x := range bt {
				bt[x], bp[x] = t.Rot.Apply(bt[x], bp[x])
			}
		}
	}
	// Grow staging buffers to 3 columns per target when needed.
	if len(e.a) < 3*n {
		grow := func(buf [][]float64) [][]float64 {
			for len(buf) < 3*n {
				buf = append(buf, make([]float64, e.nrP))
			}
			return buf
		}
		e.a = grow(e.a)
		e.b = grow(e.b)
	}
	stage(yang, e.a)
	stage(yin, e.b)
	h := e.h
	for i, t := range e.plan.Targets {
		base := i * 3
		copy(yin.R.Row(t.Recv.J+h, t.Recv.K+h), e.a[base])
		copy(yin.T.Row(t.Recv.J+h, t.Recv.K+h), e.a[base+1])
		copy(yin.P.Row(t.Recv.J+h, t.Recv.K+h), e.a[base+2])
		copy(yang.R.Row(t.Recv.J+h, t.Recv.K+h), e.b[base])
		copy(yang.T.Row(t.Recv.J+h, t.Recv.K+h), e.b[base+1])
		copy(yang.P.Row(t.Recv.J+h, t.Recv.K+h), e.b[base+2])
	}
	nn := int64(n) * int64(e.nrP) * 3
	perfcount.AddFlops(nn * 20)
	perfcount.AddVectorLoops(int64(n)*27, nn*9)
}
