package overset

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/coords"
	"repro/internal/field"
	"repro/internal/grid"
)

// physCart returns the physical (Yin-frame) Cartesian position of a
// node at spherical (r, theta, phi) in the given panel's own frame.
func physCart(panel grid.Panel, r, theta, phi float64) coords.Cartesian {
	c := coords.Spherical{R: r, Theta: theta, Phi: phi}.ToCartesian()
	if panel == grid.Yang {
		c = coords.YinYang(c)
	}
	return c
}

// fillGlobalScalar fills a panel field with a globally defined function of
// physical Cartesian position.
func fillGlobalScalar(p *grid.Patch, f *field.Scalar, fn func(coords.Cartesian) float64) {
	nr, nt, np := p.Padded()
	for k := 0; k < np; k++ {
		for j := 0; j < nt; j++ {
			for i := 0; i < nr; i++ {
				f.Set(i, j, k, fn(physCart(p.Panel, p.R[i], p.Theta[j], p.Phi[k])))
			}
		}
	}
}

// fillGlobalVector fills a panel vector field with the local spherical
// components of a globally defined Cartesian vector field.
func fillGlobalVector(p *grid.Patch, v *field.Vector, fn func(coords.Cartesian) coords.Cartesian) {
	nr, nt, np := p.Padded()
	for k := 0; k < np; k++ {
		for j := 0; j < nt; j++ {
			for i := 0; i < nr; i++ {
				w := fn(physCart(p.Panel, p.R[i], p.Theta[j], p.Phi[k]))
				if p.Panel == grid.Yang {
					w = coords.YinYang(w) // express in the Yang frame
				}
				s := coords.CartToSphVec(p.Theta[j], p.Phi[k], w)
				v.R.Set(i, j, k, s.VR)
				v.T.Set(i, j, k, s.VT)
				v.P.Set(i, j, k, s.VP)
			}
		}
	}
}

func testF(c coords.Cartesian) float64 {
	return math.Sin(2*c.X) * math.Cos(c.Y) * (1 + c.Z*c.Z)
}

func testW(c coords.Cartesian) coords.Cartesian {
	return coords.Cartesian{
		X: c.Y + math.Sin(c.Z),
		Y: c.X*c.X - c.Z,
		Z: math.Cos(c.X) * c.Y,
	}
}

func TestRimNodes(t *testing.T) {
	s := grid.NewSpec(5, 9)
	nodes := RimNodes(s)
	want := 2*s.Np + 2*(s.Nt-2)
	if len(nodes) != want {
		t.Fatalf("rim nodes = %d, want %d", len(nodes), want)
	}
	seen := map[NodeID]bool{}
	for _, n := range nodes {
		if seen[n] {
			t.Fatalf("duplicate rim node %+v", n)
		}
		seen[n] = true
		if n.J != 0 && n.J != s.Nt-1 && n.K != 0 && n.K != s.Np-1 {
			t.Fatalf("non-rim node %+v", n)
		}
	}
}

func TestPlanWeights(t *testing.T) {
	s := grid.NewSpec(5, 17)
	plan, err := NewPlan(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Targets) != len(RimNodes(s)) {
		t.Fatalf("targets = %d", len(plan.Targets))
	}
	for _, tg := range plan.Targets {
		sum := tg.W[0] + tg.W[1] + tg.W[2] + tg.W[3]
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("weights of %+v sum to %v", tg.Recv, sum)
		}
		// Weights are in [0,1] for interpolation; the isolated one-cell
		// extrapolations at boundary-curve crossings stay within [-1, 2].
		for _, w := range tg.W {
			if w < -1-1e-9 || w > 2+1e-9 {
				t.Fatalf("weight %v out of range for %+v", w, tg.Recv)
			}
		}
		// Donor cells never touch the partner rim (explicit exchange).
		if tg.DJ < 1 || tg.DJ > s.Nt-3 || tg.DK < 1 || tg.DK > s.Np-3 {
			t.Fatalf("donor cell (%d,%d) touches partner rim", tg.DJ, tg.DK)
		}
	}
}

func TestPlanRejectsInvalidSpec(t *testing.T) {
	if _, err := NewPlan(grid.Spec{Nr: 1, Nt: 1, Np: 1, RI: 0.3, RO: 1}); err == nil {
		t.Error("expected error for invalid spec")
	}
}

// rimErrScalar fills both panels with testF, poisons the rims, exchanges,
// and returns the max abs rim error against the analytic value.
func rimErrScalar(nt int) float64 {
	s := grid.NewSpec(5, nt)
	yinP := grid.NewPatch(s, grid.Yin, 1)
	yangP := grid.NewPatch(s, grid.Yang, 1)
	yin := yinP.NewScalar()
	yang := yangP.NewScalar()
	fillGlobalScalar(yinP, yin, testF)
	fillGlobalScalar(yangP, yang, testF)

	plan, err := NewPlan(s)
	if err != nil {
		panic(err)
	}
	e := NewExchanger(plan, 1)
	h := 1
	for _, tg := range plan.Targets {
		for i := range yin.Row(tg.Recv.J+h, tg.Recv.K+h) {
			yin.Row(tg.Recv.J+h, tg.Recv.K+h)[i] = 1e9
			yang.Row(tg.Recv.J+h, tg.Recv.K+h)[i] = -1e9
		}
	}
	e.ExchangeScalar(yin, yang)

	var m float64
	for _, tg := range plan.Targets {
		j, k := tg.Recv.J+h, tg.Recv.K+h
		for i := h; i < h+s.Nr; i++ {
			for _, pair := range []struct {
				p *grid.Patch
				f *field.Scalar
			}{{yinP, yin}, {yangP, yang}} {
				want := testF(physCart(pair.p.Panel, pair.p.R[i], pair.p.Theta[j], pair.p.Phi[k]))
				if err := math.Abs(pair.f.At(i, j, k) - want); err > m {
					m = err
				}
			}
		}
	}
	return m
}

func TestExchangeScalarAccuracy(t *testing.T) {
	e1 := rimErrScalar(17)
	e2 := rimErrScalar(33)
	if e1 > 0.1 {
		t.Errorf("rim error too large at nt=17: %g", e1)
	}
	if rate := math.Log2(e1 / e2); rate < 1.6 {
		t.Errorf("scalar rim convergence rate %.2f (%g -> %g)", rate, e1, e2)
	}
}

func rimErrVector(nt int) float64 {
	s := grid.NewSpec(5, nt)
	yinP := grid.NewPatch(s, grid.Yin, 1)
	yangP := grid.NewPatch(s, grid.Yang, 1)
	yin := yinP.NewVector()
	yang := yangP.NewVector()
	fillGlobalVector(yinP, yin, testW)
	fillGlobalVector(yangP, yang, testW)

	plan, err := NewPlan(s)
	if err != nil {
		panic(err)
	}
	e := NewExchanger(plan, 1)
	h := 1
	for _, tg := range plan.Targets {
		for _, f := range []*field.Vector{yin, yang} {
			for _, c := range f.Components() {
				row := c.Row(tg.Recv.J+h, tg.Recv.K+h)
				for i := range row {
					row[i] = 1e9
				}
			}
		}
	}
	e.ExchangeVector(yin, yang)

	var m float64
	for _, tg := range plan.Targets {
		j, k := tg.Recv.J+h, tg.Recv.K+h
		for i := h; i < h+s.Nr; i++ {
			for _, pair := range []struct {
				p *grid.Patch
				v *field.Vector
			}{{yinP, yin}, {yangP, yang}} {
				w := testW(physCart(pair.p.Panel, pair.p.R[i], pair.p.Theta[j], pair.p.Phi[k]))
				if pair.p.Panel == grid.Yang {
					w = coords.YinYang(w)
				}
				want := coords.CartToSphVec(pair.p.Theta[j], pair.p.Phi[k], w)
				for _, d := range []float64{
					pair.v.R.At(i, j, k) - want.VR,
					pair.v.T.At(i, j, k) - want.VT,
					pair.v.P.At(i, j, k) - want.VP,
				} {
					if e := math.Abs(d); e > m {
						m = e
					}
				}
			}
		}
	}
	return m
}

// TestExchangeVectorAccuracy: interpolated and frame-rotated vector rim
// values converge to the analytic field at second order.
func TestExchangeVectorAccuracy(t *testing.T) {
	e1 := rimErrVector(17)
	e2 := rimErrVector(33)
	if e1 > 0.1 {
		t.Errorf("vector rim error too large at nt=17: %g", e1)
	}
	if rate := math.Log2(e1 / e2); rate < 1.6 {
		t.Errorf("vector rim convergence rate %.2f (%g -> %g)", rate, e1, e2)
	}
}

// TestExchangeSymmetry: the Yin->Yang direction is computed by exactly
// the same plan as Yang->Yin, so swapping the panel arguments swaps the
// results.
func TestExchangeSymmetry(t *testing.T) {
	s := grid.NewSpec(5, 17)
	yinP := grid.NewPatch(s, grid.Yin, 1)
	yangP := grid.NewPatch(s, grid.Yang, 1)
	a1 := yinP.NewScalar()
	b1 := yangP.NewScalar()
	fillGlobalScalar(yinP, a1, testF)
	fillGlobalScalar(yangP, b1, func(c coords.Cartesian) float64 { return c.X - 2*c.Y + c.Z*c.X })
	a2 := a1.Clone()
	b2 := b1.Clone()

	plan, _ := NewPlan(s)
	e := NewExchanger(plan, 1)
	e.ExchangeScalar(a1, b1)
	e.ExchangeScalar(b2, a2) // swapped
	for i := range a1.Data {
		if a1.Data[i] != a2.Data[i] || b1.Data[i] != b2.Data[i] {
			t.Fatal("exchange is order-dependent")
		}
	}
}

// TestExchangeDoesNotTouchInterior: only rim columns may change.
func TestExchangeDoesNotTouchInterior(t *testing.T) {
	s := grid.NewSpec(5, 17)
	yinP := grid.NewPatch(s, grid.Yin, 1)
	yangP := grid.NewPatch(s, grid.Yang, 1)
	yin := yinP.NewScalar()
	yang := yangP.NewScalar()
	fillGlobalScalar(yinP, yin, testF)
	fillGlobalScalar(yangP, yang, testF)
	yinBefore := yin.Clone()

	plan, _ := NewPlan(s)
	e := NewExchanger(plan, 1)
	e.ExchangeScalar(yin, yang)

	h := 1
	for k := h + 1; k < h+s.Np-1; k++ {
		for j := h + 1; j < h+s.Nt-1; j++ {
			for i := 0; i < s.Nr+2; i++ {
				if yin.At(i, j, k) != yinBefore.At(i, j, k) {
					t.Fatalf("interior value changed at (%d,%d,%d)", i, j, k)
				}
			}
		}
	}
}

// TestInterpAtExactOnBilinear: the interpolant reproduces functions that
// are linear in theta and phi exactly.
func TestInterpAtExactOnBilinear(t *testing.T) {
	s := grid.NewSpec(5, 17)
	p := grid.NewPatch(s, grid.Yin, 1)
	f := p.NewScalar()
	fn := func(theta, phi float64) float64 { return 2*theta - 3*phi + theta*phi }
	nr, nt, np := p.Padded()
	for k := 0; k < np; k++ {
		for j := 0; j < nt; j++ {
			for i := 0; i < nr; i++ {
				f.Set(i, j, k, fn(p.Theta[j], p.Phi[k]))
			}
		}
	}
	for _, pt := range [][2]float64{
		{grid.ThetaMin + 0.3, grid.PhiMin + 0.7},
		{grid.ThetaMax - 0.01, grid.PhiMax - 0.02},
		{math.Pi / 2, 0},
	} {
		got := InterpAt(p, f, pt[0], pt[1], 2)
		want := fn(pt[0], pt[1])
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("InterpAt(%v,%v) = %v, want %v", pt[0], pt[1], got, want)
		}
	}
}

// TestDoubleSolutionConsistency: in the overlap region the Yin and Yang
// grids both carry a solution; for a smooth global field sampled onto both
// panels, sampling one panel at the other's node locations agrees within
// discretization error (the paper's "double solution causes no problem").
func TestDoubleSolutionConsistency(t *testing.T) {
	s := grid.NewSpec(5, 33)
	yinP := grid.NewPatch(s, grid.Yin, 1)
	yangP := grid.NewPatch(s, grid.Yang, 1)
	yin := yinP.NewScalar()
	yang := yangP.NewScalar()
	fillGlobalScalar(yinP, yin, testF)
	fillGlobalScalar(yangP, yang, testF)

	h := 1
	var m float64
	count := 0
	for k := h; k < h+s.Np; k++ {
		for j := h; j < h+s.Nt; j++ {
			// Yang-frame angles of this Yin node.
			td, pd := coords.YinYangAngles(yinP.Theta[j], yinP.Phi[k])
			if !grid.Contains(td, pd, 0) {
				continue // not in the overlap
			}
			count++
			got := InterpAt(yangP, yang, td, pd, 3)
			want := yin.At(3, j, k)
			if e := math.Abs(got - want); e > m {
				m = e
			}
		}
	}
	if count == 0 {
		t.Fatal("no overlap points found")
	}
	if m > 5e-3 {
		t.Errorf("double-solution disagreement %g over %d overlap nodes", m, count)
	}
}

// TestTargetPropertiesQuick: for random panel resolutions, every rim
// target's weights sum to 1, donors stay off the partner rim, and the
// tangential rotation is orthogonal.
func TestTargetPropertiesQuick(t *testing.T) {
	f := func(seed int64) bool {
		nt := 9 + int(uint64(seed)%40)*2 // odd-ish sizes 9..89
		s := grid.NewSpec(5, nt)
		for _, n := range RimNodes(s) {
			tg, err := MakeTarget(s, n)
			if err != nil {
				return false
			}
			sum := tg.W[0] + tg.W[1] + tg.W[2] + tg.W[3]
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
			if tg.DJ < 1 || tg.DJ > s.Nt-3 || tg.DK < 1 || tg.DK > s.Np-3 {
				return false
			}
			det := tg.Rot.Ctt*tg.Rot.Cpp - tg.Rot.Ctp*tg.Rot.Cpt
			if math.Abs(math.Abs(det)-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestBiquadraticAccuracy: the 3x3 rim interpolation converges at third
// order, one better than bilinear.
func TestBiquadraticAccuracy(t *testing.T) {
	rimErr := func(nt int) float64 {
		s := grid.NewSpec(5, nt)
		yinP := grid.NewPatch(s, grid.Yin, 1)
		yangP := grid.NewPatch(s, grid.Yang, 1)
		yin := yinP.NewScalar()
		yang := yangP.NewScalar()
		fillGlobalScalar(yinP, yin, testF)
		fillGlobalScalar(yangP, yang, testF)
		plan, err := NewPlan3(s)
		if err != nil {
			t.Fatal(err)
		}
		e := NewExchanger3(plan, 1)
		h := 1
		for _, tg := range plan.Targets {
			row := yin.Row(tg.Recv.J+h, tg.Recv.K+h)
			for i := range row {
				row[i] = 1e9
			}
			row = yang.Row(tg.Recv.J+h, tg.Recv.K+h)
			for i := range row {
				row[i] = -1e9
			}
		}
		e.ExchangeScalar(yin, yang)
		var m float64
		for _, tg := range plan.Targets {
			j, k := tg.Recv.J+h, tg.Recv.K+h
			for i := h; i < h+s.Nr; i++ {
				for _, pair := range []struct {
					p *grid.Patch
					f *field.Scalar
				}{{yinP, yin}, {yangP, yang}} {
					want := testF(physCart(pair.p.Panel, pair.p.R[i], pair.p.Theta[j], pair.p.Phi[k]))
					if e := math.Abs(pair.f.At(i, j, k) - want); e > m {
						m = e
					}
				}
			}
		}
		return m
	}
	e1 := rimErr(17)
	e2 := rimErr(33)
	rate := math.Log2(e1 / e2)
	if rate < 2.4 {
		t.Errorf("biquadratic rim convergence rate %.2f, want about 3 (%g -> %g)", rate, e1, e2)
	}
	// At equal resolution the biquadratic rim beats the bilinear one.
	if b2 := rimErrScalar(33); e2 >= b2 {
		t.Errorf("biquadratic error %g should beat bilinear %g at nt=33", e2, b2)
	}
}

func TestLagrange3PartitionOfUnity(t *testing.T) {
	for _, x := range []float64{0, 0.3, 1, 1.7, 2} {
		w := lagrange3(x)
		if math.Abs(w[0]+w[1]+w[2]-1) > 1e-12 {
			t.Errorf("weights at %v sum to %v", x, w[0]+w[1]+w[2])
		}
		// Exact on linear functions: sum w_i * i == x.
		if math.Abs(w[1]+2*w[2]-x) > 1e-12 {
			t.Errorf("linear reproduction fails at %v", x)
		}
	}
}

func TestNewPlan3Validation(t *testing.T) {
	if _, err := NewPlan3(grid.NewSpec(5, 5)); err == nil {
		t.Error("tiny spec accepted for biquadratic plan")
	}
}
