package overset

import (
	"math"
	"sync"

	"repro/internal/coords"
	"repro/internal/field"
	"repro/internal/grid"
	"repro/internal/perfcount"
)

// --- Shared plan cache ----------------------------------------------
//
// An exchange plan is a pure function of the grid spec and is immutable
// after construction, yet every solver (and, in a decomposed run, every
// rank) used to rebuild it from scratch — recomputing the Yin<->Yang
// transform and the bilinear weights of every rim node each time.
// PlanFor memoizes the plans per spec so the weights are computed once
// per process per grid.

var planCache sync.Map // grid.Spec -> *Plan

// PlanFor returns the shared exchange plan for spec, building it on
// first use. The returned plan is read-only; callers must not mutate
// it. Sharing one plan across solvers and concurrent ranks is safe.
func PlanFor(s grid.Spec) (*Plan, error) {
	if v, ok := planCache.Load(s); ok {
		return v.(*Plan), nil
	}
	p, err := NewPlan(s)
	if err != nil {
		return nil, err
	}
	v, _ := planCache.LoadOrStore(s, p)
	return v.(*Plan), nil
}

// --- Cached arbitrary-point sampling --------------------------------

// SampleEntry caches the donor cell and bilinear weights InterpAt
// derives from an angular point, so repeated sampling at the same point
// (diagnostics, visualization, the overlap "double solution" scan) does
// not recompute the coordinate transform and the weights every call.
type SampleEntry struct {
	DJ, DK int // global lower-corner donor node indices
	// W holds the bilinear weights for donors (DJ,DK), (DJ+1,DK),
	// (DJ,DK+1), (DJ+1,DK+1), in InterpAt's summation order.
	W [4]float64
}

// MakeSampleEntry computes the entry InterpAt would use for a sample of
// a full-panel field of spec s at (theta, phi).
func MakeSampleEntry(s grid.Spec, theta, phi float64) SampleEntry {
	dt, dp := s.Dt(), s.Dp()
	fj := (theta - grid.ThetaMin) / dt
	fk := (phi - grid.PhiMin) / dp
	dj := clampInt(int(math.Floor(fj)), 0, s.Nt-2)
	dk := clampInt(int(math.Floor(fk)), 0, s.Np-2)
	aj := fj - float64(dj)
	ak := fk - float64(dk)
	return SampleEntry{
		DJ: dj,
		DK: dk,
		W: [4]float64{
			(1 - aj) * (1 - ak),
			aj * (1 - ak),
			(1 - aj) * ak,
			aj * ak,
		},
	}
}

// Sample evaluates the cached bilinear interpolant of full-panel field
// f (halo width h) at padded radial index i. The products and the sum
// run in the same order as InterpAt, so the result is bit-identical to
// the recomputed path.
func (se SampleEntry) Sample(f *field.Scalar, h, i int) float64 {
	perfcount.AddScalarOps(7)
	return se.W[0]*f.At(i, se.DJ+h, se.DK+h) +
		se.W[1]*f.At(i, se.DJ+1+h, se.DK+h) +
		se.W[2]*f.At(i, se.DJ+h, se.DK+1+h) +
		se.W[3]*f.At(i, se.DJ+1+h, se.DK+1+h)
}

// --- Overlap diagnostic table ---------------------------------------

// OverlapSample is one cached node of the overlap "double solution"
// scan: the receiving panel's own global angular node (J, K) plus the
// donor entry for its image on the partner panel.
type OverlapSample struct {
	J, K int // global angular node indices on the receiving panel
	E    SampleEntry
}

// OverlapTable caches, once per grid spec, every interior angular node
// whose Yin<->Yang image lies strictly inside the partner footprint
// (sampling interpolates, never extrapolates), together with the donor
// weights of the image. mhd.OverlapDisagreement walks this table
// instead of recomputing the transform and the weights per node per
// call. The samples appear in the scan order of the original loop
// (k outer, j inner), so a table-driven scan visits nodes in the same
// order as a recomputed one.
type OverlapTable struct {
	Spec    grid.Spec
	Samples []OverlapSample
}

// NewOverlapTable builds the overlap sample table for spec s.
func NewOverlapTable(s grid.Spec) *OverlapTable {
	dt, dp := s.Dt(), s.Dp()
	tab := &OverlapTable{Spec: s}
	for k := 1; k < s.Np-1; k++ {
		for j := 1; j < s.Nt-1; j++ {
			theta := grid.ThetaMin + float64(j)*dt
			phi := grid.PhiMin + float64(k)*dp
			td, pd := coords.YinYangAngles(theta, phi)
			if !grid.Contains(td, pd, 0) ||
				td < grid.ThetaMin+dt || td > grid.ThetaMax-dt ||
				pd < grid.PhiMin+dp || pd > grid.PhiMax-dp {
				continue
			}
			tab.Samples = append(tab.Samples, OverlapSample{
				J: j, K: k, E: MakeSampleEntry(s, td, pd),
			})
		}
	}
	return tab
}

var overlapCache sync.Map // grid.Spec -> *OverlapTable

// OverlapTableFor returns the shared overlap table for spec, building
// it on first use. The table is read-only after construction.
func OverlapTableFor(s grid.Spec) *OverlapTable {
	if v, ok := overlapCache.Load(s); ok {
		return v.(*OverlapTable)
	}
	v, _ := overlapCache.LoadOrStore(s, NewOverlapTable(s))
	return v.(*OverlapTable)
}
