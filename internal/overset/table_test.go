package overset

import (
	"math"
	"testing"

	"repro/internal/grid"
)

// TestPlanForCaches: the interpolation plan is a pure function of the
// grid spec, so the cache must hand every caller of the same spec the
// same *Plan (built once), and distinct specs distinct plans.
func TestPlanForCaches(t *testing.T) {
	s := grid.NewSpec(9, 13)
	a, err := PlanFor(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PlanFor(s)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("PlanFor rebuilt the plan for an already-seen spec")
	}
	c, err := PlanFor(grid.NewSpec(9, 17))
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("distinct specs share a plan")
	}
}

// TestSampleEntryMatchesInterpAt pins the cached-weights fix: a
// SampleEntry built once from (theta, phi) must reproduce InterpAt's
// recomputed-weight result bit for bit, including at the clamped edges
// of the donor index range.
func TestSampleEntryMatchesInterpAt(t *testing.T) {
	s := grid.NewSpec(9, 13)
	p := grid.NewPatch(s, grid.Yang, 1)
	f := p.NewScalar()
	for n := range f.Data {
		f.Data[n] = math.Sin(0.37 * float64(n))
	}
	h := p.H
	// Sweep the angular footprint including points beyond the node range
	// (exercising the clamp) and off-node points (fractional weights).
	for ti := -1; ti <= 2*(s.Nt-1)+1; ti++ {
		theta := grid.ThetaMin + float64(ti)*p.Dt/2
		for ki := -1; ki <= 2*(s.Np-1)+1; ki += 3 {
			phi := grid.PhiMin + float64(ki)*p.Dp/2
			e := MakeSampleEntry(s, theta, phi)
			for _, i := range []int{h, h + p.Nr/2, h + p.Nr - 1} {
				got := e.Sample(f, h, i)
				want := InterpAt(p, f, theta, phi, i)
				if got != want {
					t.Fatalf("theta=%v phi=%v i=%d: table %x recomputed %x",
						theta, phi, i, got, want)
				}
			}
		}
	}
}

// TestOverlapTableMatchesRecomputed: the cached overlap table equals a
// freshly recomputed one entry for entry — same sample points, same
// donor indices, exactly the same weights.
func TestOverlapTableMatchesRecomputed(t *testing.T) {
	s := grid.NewSpec(9, 17)
	cached := OverlapTableFor(s)
	if again := OverlapTableFor(s); again != cached {
		t.Error("OverlapTableFor rebuilt the table for an already-seen spec")
	}
	fresh := NewOverlapTable(s)
	if len(cached.Samples) == 0 {
		t.Fatal("overlap table is empty")
	}
	if len(cached.Samples) != len(fresh.Samples) {
		t.Fatalf("cached %d samples, recomputed %d", len(cached.Samples), len(fresh.Samples))
	}
	for n, cs := range cached.Samples {
		fs := fresh.Samples[n]
		if cs.J != fs.J || cs.K != fs.K || cs.E.DJ != fs.E.DJ || cs.E.DK != fs.E.DK {
			t.Fatalf("sample %d: indices (%d,%d;%d,%d) vs (%d,%d;%d,%d)",
				n, cs.J, cs.K, cs.E.DJ, cs.E.DK, fs.J, fs.K, fs.E.DJ, fs.E.DK)
		}
		for w := range cs.E.W {
			if cs.E.W[w] != fs.E.W[w] {
				t.Fatalf("sample %d weight %d: cached %x recomputed %x",
					n, w, cs.E.W[w], fs.E.W[w])
			}
		}
	}
}
