package par

import (
	"testing"

	"repro/internal/obs"
)

func TestPoolGauge(t *testing.T) {
	p := NewPool(4)
	if p == nil {
		t.Fatal("want a real pool")
	}
	defer p.Close()
	var g obs.PoolGauge
	p.SetGauge(&g)
	sink := make([]float64, 1<<14)
	for rep := 0; rep < 3; rep++ {
		p.For(len(sink), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				sink[i] += float64(i)
			}
		})
	}
	if got := g.Calls.Load(); got != 3 {
		t.Fatalf("Calls = %d, want 3", got)
	}
	if got := g.Workers.Load(); got != 4 {
		t.Fatalf("Workers = %d, want 4", got)
	}
	if g.WallNS.Load() <= 0 || g.BusyNS.Load() <= 0 {
		t.Fatalf("wall=%d busy=%d, want both > 0", g.WallNS.Load(), g.BusyNS.Load())
	}
	if u := g.Utilization(); u <= 0 || u > 1.5 {
		// Busy can slightly exceed wall*workers on coarse clocks, but an
		// order-of-magnitude miss means the accounting is wrong.
		t.Fatalf("Utilization = %g, want in (0, 1.5]", u)
	}
	// Detach and check the gauge stops accumulating.
	p.SetGauge(nil)
	calls := g.Calls.Load()
	p.For(len(sink), func(lo, hi int) {})
	if g.Calls.Load() != calls {
		t.Fatal("detached gauge still accumulating")
	}
}

func TestSetGaugeNilPool(t *testing.T) {
	var p *Pool
	var g obs.PoolGauge
	p.SetGauge(&g) // must not panic
	p.For(8, func(lo, hi int) {})
	if g.Calls.Load() != 0 {
		t.Fatal("serial pool must not touch the gauge")
	}
}
