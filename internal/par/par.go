// Package par provides the intra-rank worker pool that plays the role
// of the vector pipelines inside one Earth Simulator AP: each rank (a
// goroutine in our runtime) owns a small pool of workers, sized by its
// share of GOMAXPROCS, and routes the hot stencil/overset loops through
// a tiled parallel-for. The pool is created once per rank and reused
// across every step, so the steady state spawns no goroutines and
// performs no allocations on the kernel path.
//
// Determinism contract: For splits the index range [0,n) into tiles
// whose bounds are a pure function of (n, tiles) alone, and every tile
// writes a disjoint slice of the output, so parallel execution is
// bit-identical to serial execution by construction. Reductions
// (ReduceMax) compute one partial per tile and combine the partials in
// ascending tile order on the caller, fixing the reduction order
// regardless of worker scheduling.
package par

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Pool is a reusable fixed-size worker pool. A nil *Pool is valid and
// means "serial": every method degrades to an inline loop, so kernels
// can be written once against the pool API and run unchanged without
// one.
type Pool struct {
	workers int
	jobs    chan func()
	closed  atomic.Bool
	wg      sync.WaitGroup // tracks worker goroutines for Close
	gauge   *obs.PoolGauge
}

// SetGauge attaches a utilization gauge: every subsequent parallel
// region adds its wall time and per-lane busy time to it. Nil detaches;
// a nil pool ignores the call (serial loops have no pool utilization to
// speak of). Call before handing the pool to its rank — the field is
// read concurrently by For.
func (p *Pool) SetGauge(g *obs.PoolGauge) {
	if p == nil {
		return
	}
	p.gauge = g
	if g != nil {
		for {
			cur := g.Workers.Load()
			if int64(p.workers) <= cur || g.Workers.CompareAndSwap(cur, int64(p.workers)) {
				break
			}
		}
	}
}

// NewPool starts a pool with the given number of workers. workers <= 1
// returns nil (the serial pool), so callers can size pools with integer
// division without special-casing the degenerate share.
func NewPool(workers int) *Pool {
	if workers <= 1 {
		return nil
	}
	p := &Pool{workers: workers, jobs: make(chan func(), workers)}
	// The caller participates in For, so only workers-1 goroutines are
	// needed to reach the requested width.
	p.wg.Add(workers - 1)
	for i := 0; i < workers-1; i++ {
		go func() {
			defer p.wg.Done()
			for fn := range p.jobs {
				fn()
			}
		}()
	}
	return p
}

// Workers reports the parallel width of the pool (1 for the nil/serial
// pool).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Close stops the worker goroutines. The pool must not be used after
// Close; calling Close on a nil or already-closed pool is a no-op.
func (p *Pool) Close() {
	if p == nil || !p.closed.CompareAndSwap(false, true) {
		return
	}
	close(p.jobs)
	p.wg.Wait()
}

// tileBounds returns the half-open bounds of tile t when [0,n) is split
// into `tiles` near-equal tiles: the first n%tiles tiles get one extra
// element. Pure function of (n, tiles, t) — this is what makes the
// decomposition deterministic.
func tileBounds(n, tiles, t int) (lo, hi int) {
	q, r := n/tiles, n%tiles
	lo = t*q + min(t, r)
	hi = lo + q
	if t < r {
		hi++
	}
	return lo, hi
}

// numTiles picks the tile count for a range of n elements: enough tiles
// to feed every worker with a little slack for load imbalance, but
// never more tiles than elements.
func (p *Pool) numTiles(n int) int {
	t := 4 * p.workers
	if t > n {
		t = n
	}
	return t
}

// For executes fn over a partition of [0,n): each call fn(lo,hi) owns
// the half-open index range [lo,hi), and distinct calls receive
// disjoint ranges covering [0,n) exactly. On a nil pool (or n too small
// to split) this is fn(0,n) inline. fn must not call For on the same
// pool (the hot loops it serves are leaves).
func (p *Pool) For(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if p == nil || n < 2 {
		fn(0, n)
		return
	}
	tiles := p.numTiles(n)
	if tiles <= 1 {
		fn(0, n)
		return
	}
	g := p.gauge
	var t0 time.Time
	if g != nil {
		t0 = time.Now()
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	run := func() {
		var l0 time.Time
		if g != nil {
			l0 = time.Now()
		}
		for {
			t := int(next.Add(1)) - 1
			if t >= tiles {
				break
			}
			lo, hi := tileBounds(n, tiles, t)
			fn(lo, hi)
		}
		if g != nil {
			g.BusyNS.Add(time.Since(l0).Nanoseconds())
		}
	}
	// Enlist up to workers-1 pool workers; the caller is the last lane.
	// Send never blocks meaningfully: jobs has capacity >= workers-1 and
	// each posted job exits promptly once the tile counter drains.
	for i := 0; i < p.workers-1; i++ {
		wg.Add(1)
		select {
		case p.jobs <- func() { defer wg.Done(); run() }:
		default:
			// All workers busy (should not happen for leaf loops, but
			// degrade gracefully rather than deadlock).
			wg.Done()
		}
	}
	run()
	wg.Wait()
	if g != nil {
		g.WallNS.Add(time.Since(t0).Nanoseconds())
		g.Calls.Add(1)
	}
}

// ReduceMax returns the maximum over tiles of fn(lo,hi), where fn
// computes a per-tile partial maximum. The partials are combined in
// ascending tile order, so the result is bit-identical to the serial
// left-to-right reduction for max (max is associative and commutative
// over floats apart from NaN ordering; fixing the combine order makes
// the result reproducible even so). n must be > 0.
func (p *Pool) ReduceMax(n int, fn func(lo, hi int) float64) float64 {
	if p == nil || n < 2 {
		return fn(0, n)
	}
	tiles := p.numTiles(n)
	if tiles <= 1 {
		return fn(0, n)
	}
	partials := make([]float64, tiles)
	p.For(tiles, func(tlo, thi int) {
		for t := tlo; t < thi; t++ {
			lo, hi := tileBounds(n, tiles, t)
			partials[t] = fn(lo, hi)
		}
	})
	m := partials[0]
	for _, v := range partials[1:] {
		if v > m {
			m = v
		}
	}
	return m
}
