package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestForCoversRangeExactlyOnce checks that For partitions [0,n) into
// disjoint ranges covering every index exactly once, across a sweep of
// awkward sizes and widths.
func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 4, 7} {
		p := NewPool(workers)
		for _, n := range []int{0, 1, 2, 3, 5, 16, 17, 33, 100, 257} {
			hits := make([]int32, n)
			p.For(n, func(lo, hi int) {
				if lo < 0 || hi > n || lo > hi {
					t.Errorf("workers=%d n=%d: bad range [%d,%d)", workers, n, lo, hi)
					return
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d hit %d times", workers, n, i, h)
				}
			}
		}
		p.Close()
	}
}

// TestNilPoolIsSerial checks the serial degradations of the nil pool.
func TestNilPoolIsSerial(t *testing.T) {
	var p *Pool
	if w := p.Workers(); w != 1 {
		t.Fatalf("nil pool Workers() = %d, want 1", w)
	}
	calls := 0
	p.For(10, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 10 {
			t.Fatalf("nil pool For range [%d,%d), want [0,10)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("nil pool For made %d calls, want 1", calls)
	}
	p.Close() // must not panic
	if got := NewPool(1); got != nil {
		t.Fatalf("NewPool(1) = %v, want nil (serial)", got)
	}
	if got := NewPool(0); got != nil {
		t.Fatalf("NewPool(0) = %v, want nil (serial)", got)
	}
}

// TestTileBoundsDeterministic pins the tile decomposition as a pure
// function of (n, tiles): recomputing bounds yields identical splits,
// tiles are contiguous, and sizes differ by at most one.
func TestTileBoundsDeterministic(t *testing.T) {
	for _, n := range []int{1, 7, 16, 100, 1023} {
		for _, tiles := range []int{1, 2, 3, 8, 16} {
			if tiles > n {
				continue
			}
			prev := 0
			minSz, maxSz := n+1, -1
			for tt := 0; tt < tiles; tt++ {
				lo, hi := tileBounds(n, tiles, tt)
				lo2, hi2 := tileBounds(n, tiles, tt)
				if lo != lo2 || hi != hi2 {
					t.Fatalf("tileBounds(%d,%d,%d) not deterministic", n, tiles, tt)
				}
				if lo != prev {
					t.Fatalf("tileBounds(%d,%d,%d): gap, lo=%d want %d", n, tiles, tt, lo, prev)
				}
				prev = hi
				if sz := hi - lo; sz < minSz {
					minSz = sz
				} else if sz > maxSz {
					maxSz = sz
				}
				if sz := hi - lo; sz > maxSz {
					maxSz = sz
				}
			}
			if prev != n {
				t.Fatalf("tileBounds(%d,%d,·): last hi=%d want %d", n, tiles, prev, n)
			}
			if maxSz-minSz > 1 {
				t.Fatalf("tileBounds(%d,%d,·): tile sizes range [%d,%d], want spread <= 1", n, tiles, minSz, maxSz)
			}
		}
	}
}

// TestForBitIdentical runs a floating-point kernel serially and through
// pools of several widths and demands bit-identical output: each range
// writes disjoint outputs, so scheduling cannot change any bit.
func TestForBitIdentical(t *testing.T) {
	const n = 1553 // deliberately not a multiple of any worker count
	in := make([]float64, n)
	for i := range in {
		in[i] = 1e-3*float64(i*i) - 7.5*float64(i) + 0.125
	}
	kernel := func(p *Pool, out []float64) {
		p.For(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				v := in[i]
				out[i] = v*v*0.25 + v/3.0 - 1.0/(v*v+2.0)
			}
		})
	}
	ref := make([]float64, n)
	kernel(nil, ref)
	for _, workers := range []int{2, 3, 4, 8} {
		p := NewPool(workers)
		for rep := 0; rep < 5; rep++ {
			got := make([]float64, n)
			kernel(p, got)
			for i := range got {
				if got[i] != ref[i] {
					t.Fatalf("workers=%d rep=%d: out[%d] = %x, serial %x", workers, rep, i, got[i], ref[i])
				}
			}
		}
		p.Close()
	}
}

// TestReduceMaxMatchesSerial checks that the tiled max reduction equals
// the serial scan exactly, for hostile inputs (negatives, repeated max).
func TestReduceMaxMatchesSerial(t *testing.T) {
	const n = 977
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = -100 + 13.7*float64((i*2654435761)%97)
	}
	vals[500] = 1e9
	vals[501] = 1e9 // repeated maximum
	serial := vals[0]
	for _, v := range vals[1:] {
		if v > serial {
			serial = v
		}
	}
	tileMax := func(lo, hi int) float64 {
		m := vals[lo]
		for i := lo + 1; i < hi; i++ {
			if vals[i] > m {
				m = vals[i]
			}
		}
		return m
	}
	for _, workers := range []int{1, 2, 4} {
		p := NewPool(workers)
		for rep := 0; rep < 5; rep++ {
			got := p.ReduceMax(n, tileMax)
			if got != serial {
				t.Fatalf("workers=%d: ReduceMax = %x, serial %x", workers, got, serial)
			}
		}
		p.Close()
	}
}

// TestPoolReuseStress hammers one pool with many successive For calls
// (the per-step reuse pattern) and checks the sums; run under -race
// this doubles as the data-race gate on the pool internals.
func TestPoolReuseStress(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const n = 4096
	data := make([]float64, n)
	for rep := 0; rep < 200; rep++ {
		p.For(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				data[i] += 1
			}
		})
	}
	for i, v := range data {
		if v != 200 {
			t.Fatalf("data[%d] = %v, want 200", i, v)
		}
	}
}

// TestConcurrentPools checks that independent pools on concurrent
// "ranks" (goroutines) do not interfere — the decomp usage pattern.
func TestConcurrentPools(t *testing.T) {
	var wg sync.WaitGroup
	for rank := 0; rank < 4; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			p := NewPool(2)
			defer p.Close()
			const n = 1000
			out := make([]float64, n)
			for rep := 0; rep < 50; rep++ {
				p.For(n, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						out[i] = float64(rank*rep + i)
					}
				})
			}
			for i := range out {
				if out[i] != float64(rank*49+i) {
					t.Errorf("rank %d: out[%d] = %v", rank, i, out[i])
					return
				}
			}
		}(rank)
	}
	wg.Wait()
}

// TestCloseIdempotent verifies double-Close is safe.
func TestCloseIdempotent(t *testing.T) {
	p := NewPool(3)
	p.Close()
	p.Close()
}

func BenchmarkForOverhead(b *testing.B) {
	p := NewPool(4)
	defer b.StopTimer()
	defer p.Close()
	out := make([]float64, 1<<14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.For(len(out), func(lo, hi int) {
			for j := lo; j < hi; j++ {
				out[j] += 1
			}
		})
	}
}

// TestTiledSpeedupAt4Workers asserts the acceptance-criterion speedup —
// a tiled stencil sweep at 4 workers runs at least 2x faster than the
// serial sweep — on hosts with enough cores for the comparison to be
// physical. On fewer than 4 CPUs the pool cannot beat serial (the
// workers share one core) and the test records the fact and skips.
func TestTiledSpeedupAt4Workers(t *testing.T) {
	if runtime.NumCPU() < 4 {
		t.Skipf("host has %d CPUs; 4-worker speedup cannot materialize", runtime.NumCPU())
	}
	const n = 1 << 9
	const cols = 1 << 10
	in := make([]float64, n*cols)
	out := make([]float64, n*cols)
	for i := range in {
		in[i] = float64(i%97) * 0.013
	}
	sweep := func(p *Pool) {
		p.For(n, func(lo, hi int) {
			for r := lo; r < hi; r++ {
				row := in[r*cols : (r+1)*cols]
				dst := out[r*cols : (r+1)*cols]
				for c := 1; c < cols-1; c++ {
					dst[c] = 0.25*row[c-1] + 0.5*row[c] + 0.25*row[c+1]
				}
			}
		})
	}
	timeIt := func(p *Pool) float64 {
		const reps = 50
		sweep(p) // warm up
		start := time.Now()
		for i := 0; i < reps; i++ {
			sweep(p)
		}
		return time.Since(start).Seconds() / reps
	}
	serial := timeIt(nil)
	pool := NewPool(4)
	defer pool.Close()
	pooled := timeIt(pool)
	if speedup := serial / pooled; speedup < 2 {
		t.Errorf("4-worker speedup %.2fx, want >= 2x (serial %.3gs, pooled %.3gs)",
			speedup, serial, pooled)
	}
}
