// Package perfcount provides global instrumentation counters for
// floating-point work and vector-loop structure.
//
// The Earth Simulator reported hardware counters (FLOP count, vector
// instruction count, vector element count, average vector length) through
// its MPIPROGINF facility; the paper's List 1 is such a report. This
// package is the software substitute: numerical kernels report, once per
// whole-field operation, how many flops they performed and how their
// innermost (vectorizable) loops were shaped. The es package turns these
// totals into a machine-model performance report.
//
// Counters are global and atomic so that concurrently running ranks (see
// internal/mpi) can share them; kernels amortize the atomic cost by adding
// once per field sweep, not per element.
package perfcount

import "sync/atomic"

var (
	flops       atomic.Int64
	vectorLoops atomic.Int64
	vectorElems atomic.Int64
	scalarOps   atomic.Int64
	commBytes   atomic.Int64
	commMsgs    atomic.Int64
)

// AddFlops records n floating-point operations.
func AddFlops(n int64) { flops.Add(n) }

// AddVectorLoops records the execution of loops innermost vectorizable
// loops with elems total elements. On a vector machine each such loop
// becomes a sequence of vector instructions whose length is the trip count,
// so (loops, elems) determines the average vector length.
func AddVectorLoops(loops, elems int64) {
	vectorLoops.Add(loops)
	vectorElems.Add(elems)
}

// AddScalarOps records n operations that are inherently scalar (loop
// bookkeeping, boundary fix-ups, interpolation gather/scatter) and would
// not run in the vector pipeline.
func AddScalarOps(n int64) { scalarOps.Add(n) }

// AddComm records one message of n bytes passed through the message
// runtime.
func AddComm(n int64) {
	commBytes.Add(n)
	commMsgs.Add(1)
}

// Snapshot is a point-in-time copy of every counter.
type Snapshot struct {
	Flops       int64 // floating-point operations
	VectorLoops int64 // innermost vectorizable loops executed
	VectorElems int64 // total elements processed by those loops
	ScalarOps   int64 // inherently scalar operations
	CommBytes   int64 // bytes moved through the message runtime
	CommMsgs    int64 // messages moved through the message runtime
}

// Read returns the current counter values.
func Read() Snapshot {
	return Snapshot{
		Flops:       flops.Load(),
		VectorLoops: vectorLoops.Load(),
		VectorElems: vectorElems.Load(),
		ScalarOps:   scalarOps.Load(),
		CommBytes:   commBytes.Load(),
		CommMsgs:    commMsgs.Load(),
	}
}

// Reset zeroes every counter.
func Reset() {
	flops.Store(0)
	vectorLoops.Store(0)
	vectorElems.Store(0)
	scalarOps.Store(0)
	commBytes.Store(0)
	commMsgs.Store(0)
}

// Sub returns s - t component-wise; use it to charge an interval of work.
func (s Snapshot) Sub(t Snapshot) Snapshot {
	return Snapshot{
		Flops:       s.Flops - t.Flops,
		VectorLoops: s.VectorLoops - t.VectorLoops,
		VectorElems: s.VectorElems - t.VectorElems,
		ScalarOps:   s.ScalarOps - t.ScalarOps,
		CommBytes:   s.CommBytes - t.CommBytes,
		CommMsgs:    s.CommMsgs - t.CommMsgs,
	}
}

// AverageVectorLength reports VectorElems/VectorLoops, the quantity the
// Earth Simulator called "Average Vector Length" (251.6 in the paper's
// List 1). Zero loops yield 0.
func (s Snapshot) AverageVectorLength() float64 {
	if s.VectorLoops == 0 {
		return 0
	}
	return float64(s.VectorElems) / float64(s.VectorLoops)
}

// VectorOperationRatio reports the fraction of all operations executed by
// vector loops, the quantity the Earth Simulator called "Vector Operation
// Ratio" (99% in the paper's List 1).
func (s Snapshot) VectorOperationRatio() float64 {
	total := s.VectorElems + s.ScalarOps
	if total == 0 {
		return 0
	}
	return float64(s.VectorElems) / float64(total)
}
