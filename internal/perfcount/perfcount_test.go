package perfcount

import (
	"sync"
	"testing"
)

func TestCountersAccumulate(t *testing.T) {
	Reset()
	AddFlops(100)
	AddVectorLoops(2, 500)
	AddScalarOps(7)
	AddComm(4096)
	s := Read()
	if s.Flops != 100 || s.VectorLoops != 2 || s.VectorElems != 500 || s.ScalarOps != 7 {
		t.Errorf("unexpected snapshot %+v", s)
	}
	if s.CommBytes != 4096 || s.CommMsgs != 1 {
		t.Errorf("comm counters %+v", s)
	}
	Reset()
	if got := Read(); got != (Snapshot{}) {
		t.Errorf("reset left %+v", got)
	}
}

func TestSub(t *testing.T) {
	Reset()
	AddFlops(10)
	before := Read()
	AddFlops(25)
	AddVectorLoops(1, 256)
	delta := Read().Sub(before)
	if delta.Flops != 25 || delta.VectorElems != 256 || delta.VectorLoops != 1 {
		t.Errorf("delta %+v", delta)
	}
}

func TestAverageVectorLength(t *testing.T) {
	s := Snapshot{VectorLoops: 4, VectorElems: 1000}
	if got := s.AverageVectorLength(); got != 250 {
		t.Errorf("avg vector length = %v, want 250", got)
	}
	if got := (Snapshot{}).AverageVectorLength(); got != 0 {
		t.Errorf("empty avg = %v, want 0", got)
	}
}

func TestVectorOperationRatio(t *testing.T) {
	s := Snapshot{VectorElems: 99, ScalarOps: 1}
	if got := s.VectorOperationRatio(); got != 0.99 {
		t.Errorf("ratio = %v, want 0.99", got)
	}
	if got := (Snapshot{}).VectorOperationRatio(); got != 0 {
		t.Errorf("empty ratio = %v, want 0", got)
	}
}

func TestConcurrentAdds(t *testing.T) {
	Reset()
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				AddFlops(1)
				AddVectorLoops(1, 10)
			}
		}()
	}
	wg.Wait()
	s := Read()
	if s.Flops != workers*per || s.VectorLoops != workers*per || s.VectorElems != workers*per*10 {
		t.Errorf("lost updates: %+v", s)
	}
}
