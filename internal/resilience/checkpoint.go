package resilience

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/grid"
	"repro/internal/mhd"
	"repro/internal/mpi"
	"repro/internal/snapshot"
)

const (
	ckptPrefix     = "ckpt-"
	ckptSuffix     = ".yyck"
	postmortemName = "postmortem.txt"
)

// ckptName is the on-disk name of the checkpoint committed at step.
func ckptName(step int) string {
	return fmt.Sprintf("%s%09d%s", ckptPrefix, step, ckptSuffix)
}

// ckptStep parses the step out of a checkpoint file name.
func ckptStep(name string) (int, bool) {
	if !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptSuffix) {
		return 0, false
	}
	digits := strings.TrimSuffix(strings.TrimPrefix(name, ckptPrefix), ckptSuffix)
	step, err := strconv.Atoi(digits)
	if err != nil || step < 0 {
		return 0, false
	}
	return step, true
}

// listCheckpoints returns the campaign directory's checkpoint steps in
// ascending order.
func listCheckpoints(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var steps []int
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if step, ok := ckptStep(e.Name()); ok {
			steps = append(steps, step)
		}
	}
	sort.Ints(steps)
	return steps, nil
}

// ckptSyncHook, when non-nil, observes the durability sequence of
// writeCheckpointFile — ("sync-file", tmp), ("rename", final),
// ("sync-dir", dir) in order. Test seam only.
var ckptSyncHook func(op, path string)

func noteSync(op, path string) {
	if ckptSyncHook != nil {
		ckptSyncHook(op, path)
	}
}

// writeCheckpointFile atomically and durably persists the state: the
// checkpoint is streamed to a temporary file in the same directory,
// fsynced, renamed into place, and the directory itself is fsynced.
// The rename keeps a crash mid-write from leaving a half-written file
// under a checkpoint name; the two fsyncs keep a host crash right after
// the rename from leaving a zero-length (data never flushed) or
// unlinked (directory entry never flushed) "newest" checkpoint.
func writeCheckpointFile(dir string, sv *mhd.Solver) (string, error) {
	final := filepath.Join(dir, ckptName(sv.Step))
	tmp, err := os.CreateTemp(dir, ckptName(sv.Step)+".tmp-*")
	if err != nil {
		return "", fmt.Errorf("resilience: creating checkpoint temp file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op once the rename has happened
	if err := snapshot.WriteCheckpoint(tmp, sv); err != nil {
		tmp.Close()
		return "", fmt.Errorf("resilience: writing checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return "", fmt.Errorf("resilience: syncing checkpoint: %w", err)
	}
	noteSync("sync-file", tmp.Name())
	if err := tmp.Close(); err != nil {
		return "", fmt.Errorf("resilience: closing checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return "", fmt.Errorf("resilience: committing checkpoint: %w", err)
	}
	noteSync("rename", final)
	if err := syncDir(dir); err != nil {
		return "", err
	}
	noteSync("sync-dir", dir)
	return final, nil
}

// syncDir flushes a directory's entries so a committed rename survives
// a host crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("resilience: opening checkpoint dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("resilience: syncing checkpoint dir: %w", err)
	}
	return nil
}

// loadNewest restores the newest checkpoint in dir that reads back
// valid. Corrupt or truncated files are skipped (collected in skipped)
// and the scan falls back to the next-newest — a half-written or
// bit-rotted newest checkpoint must not strand a resumable campaign. A
// checkpoint that reads back fine but holds a different grid resolution
// is a hard error, not a skip: the campaign was pointed at the wrong
// directory (or reconfigured), and silently resuming an older
// same-resolution file would fork the trajectory. Returns
// (nil, skipped, nil) when no valid checkpoint exists.
func loadNewest(dir string, spec grid.Spec) (*mhd.Solver, []string, error) {
	steps, err := listCheckpoints(dir)
	if err != nil {
		return nil, nil, err
	}
	var skipped []string
	for i := len(steps) - 1; i >= 0; i-- {
		name := ckptName(steps[i])
		sv, err := readCheckpointFile(filepath.Join(dir, name))
		if err != nil {
			skipped = append(skipped, fmt.Sprintf("%s: %v", name, err))
			continue
		}
		if sv.Spec != spec {
			return nil, skipped, fmt.Errorf("resilience: checkpoint %s holds grid %dx%dx%d, campaign wants %dx%dx%d — wrong directory or reconfigured resolution",
				name, sv.Spec.Nr, sv.Spec.Nt, sv.Spec.Np, spec.Nr, spec.Nt, spec.Np)
		}
		return sv, skipped, nil
	}
	return nil, skipped, nil
}

func readCheckpointFile(path string) (*mhd.Solver, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return snapshot.ReadCheckpoint(f)
}

// prune deletes all but the newest keep checkpoints.
func prune(dir string, keep int) error {
	steps, err := listCheckpoints(dir)
	if err != nil {
		return err
	}
	for len(steps) > keep {
		if err := os.Remove(filepath.Join(dir, ckptName(steps[0]))); err != nil {
			return err
		}
		steps = steps[1:]
	}
	return nil
}

// postmortemText renders a human-readable account of an exhausted
// segment — the sink persists it (atomically beside the checkpoints,
// or as a ledger-pinned store blob). The account ends with the
// campaign's fault/heartbeat event timeline — what dropped, who was
// suspected or confirmed dead, and when — so a failed campaign is
// diagnosable from this one artifact.
func postmortemText(segStart, attempts int, cause error, res *Result, events *mpi.EventLog) string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign post-mortem\n")
	fmt.Fprintf(&b, "failed segment start step: %d\n", segStart)
	fmt.Fprintf(&b, "attempts: %d\n", attempts)
	fmt.Fprintf(&b, "last error: %v\n", cause)
	fmt.Fprintf(&b, "committed segments: %d\n", len(res.Diags))
	fmt.Fprintf(&b, "committed dts: %v\n", res.DTs)
	if len(res.Recoveries) > 0 {
		fmt.Fprintf(&b, "recovery decisions (%d):\n", len(res.Recoveries))
		for _, d := range res.Recoveries {
			fmt.Fprintf(&b, "  %s\n", d)
		}
	} else {
		fmt.Fprintf(&b, "recovery decisions: none\n")
	}
	if len(res.Diags) > 0 {
		fmt.Fprintf(&b, "last committed diagnostics: %+v\n", res.Diags[len(res.Diags)-1])
	}
	if n := events.Len(); n > 0 {
		fmt.Fprintf(&b, "event timeline (%d events):\n", n)
		for _, e := range events.Events() {
			fmt.Fprintf(&b, "  %s\n", e)
		}
	} else {
		fmt.Fprintf(&b, "event timeline: empty\n")
	}
	return b.String()
}
