package resilience

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/mhd"
	"repro/internal/mpi"
)

// TestCheckpointDurabilitySequence asserts the write-rename-sync order
// of the atomic checkpoint commit: the payload is fsynced before the
// rename, and the directory is fsynced after it — the sequence that
// keeps a host crash from leaving a zero-length or unlinked "newest"
// checkpoint.
func TestCheckpointDurabilitySequence(t *testing.T) {
	cfg := testConfig(t, 2, 2)
	sv, err := mhd.NewSolver(cfg.Core.WithDefaults().Spec(), *cfg.Core.WithDefaults().Params, *cfg.Core.WithDefaults().IC)
	if err != nil {
		t.Fatal(err)
	}

	var ops []string
	var paths []string
	ckptSyncHook = func(op, path string) {
		ops = append(ops, op)
		paths = append(paths, path)
	}
	defer func() { ckptSyncHook = nil }()

	final, err := writeCheckpointFile(cfg.Dir, sv)
	if err != nil {
		t.Fatal(err)
	}

	want := []string{"sync-file", "rename", "sync-dir"}
	if len(ops) != len(want) {
		t.Fatalf("durability sequence %v, want %v", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("durability sequence %v, want %v", ops, want)
		}
	}
	// The file fsync targets the temp file (pre-rename), the directory
	// fsync the checkpoint's directory.
	if !strings.Contains(paths[0], ".tmp-") {
		t.Errorf("sync-file hit %q, want the temp file", paths[0])
	}
	if paths[1] != final {
		t.Errorf("rename produced %q, want %q", paths[1], final)
	}
	if paths[2] != cfg.Dir {
		t.Errorf("sync-dir hit %q, want %q", paths[2], cfg.Dir)
	}
	if _, err := os.Stat(final); err != nil {
		t.Fatalf("committed checkpoint missing: %v", err)
	}
}

// TestPostmortemTimeline: a campaign that exhausts its retries writes
// the fault/heartbeat event timeline into postmortem.txt, so the
// failure is diagnosable from one file.
func TestPostmortemTimeline(t *testing.T) {
	cfg := testConfig(t, 4, 4)
	cfg.MaxRetries = 1
	cfg.Deadline = 200 * time.Millisecond
	// Drop the overset message on every attempt: first run and retry
	// both die, exhausting the budget.
	plan := mpi.NewFaultPlan()
	for epoch := 0; epoch < 64; epoch++ {
		plan.Drop(0, 1, 100, epoch)
	}
	cfg.Faults = plan

	_, err := RunCampaign(cfg)
	if err == nil {
		t.Fatal("campaign with a permanently dropped message should fail")
	}
	pm, rerr := os.ReadFile(filepath.Join(cfg.Dir, postmortemName))
	if rerr != nil {
		t.Fatalf("post-mortem not written: %v", rerr)
	}
	text := string(pm)
	for _, frag := range []string{"event timeline", "fault.drop", "tag=100", "segment start=0"} {
		if !strings.Contains(text, frag) {
			t.Errorf("post-mortem missing %q:\n%s", frag, text)
		}
	}
}

// TestCampaignReliabilityAbsorbsDrops: with the reliable transport on,
// a scripted drop costs a retransmission instead of a rollback — the
// campaign commits with zero retries.
func TestCampaignReliabilityAbsorbsDrops(t *testing.T) {
	cfg := testConfig(t, 4, 2)
	cfg.Deadline = 10 * time.Second
	cfg.Reliability = &mpi.Reliability{AckTimeout: 2 * time.Millisecond}
	cfg.Faults = mpi.NewFaultPlan().
		Drop(0, 1, 100, 0).
		Duplicate(1, 0, 100, 1)

	res, err := RunCampaign(cfg)
	if err != nil {
		t.Fatalf("campaign failed: %v", err)
	}
	if res.Retries != 0 {
		t.Fatalf("reliable campaign rolled back %d times; the transport should have absorbed the faults", res.Retries)
	}
	var sawRetransmit bool
	for _, e := range res.Events {
		if e.Kind == "xport.retransmit" {
			sawRetransmit = true
		}
	}
	if !sawRetransmit {
		t.Fatalf("no retransmission recorded; the drop never bit. timeline: %v", res.Events)
	}
}

// TestCampaignHeartbeatRecoversSilentKill: a silently killed rank is
// confirmed by heartbeat as a typed *mpi.RankFailedError well inside
// the deadline, the segment rolls back, and the campaign completes.
func TestCampaignHeartbeatRecoversSilentKill(t *testing.T) {
	const deadline = 20 * time.Second
	cfg := testConfig(t, 4, 2)
	cfg.Deadline = deadline
	// 10ms beat -> 200ms confirm: still two orders of magnitude inside
	// the deadline, with enough slack that race-detector scheduling
	// starvation of a healthy beater cannot fake a failure (a false
	// positive would add a retry and break the Retries == 1 pin).
	cfg.Heartbeat = &mpi.Heartbeat{Interval: 10 * time.Millisecond}
	cfg.Faults = mpi.NewFaultPlan().KillSilent(1, 3)

	start := time.Now()
	res, err := RunCampaign(cfg)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("campaign failed: %v", err)
	}
	if res.Retries != 1 {
		t.Fatalf("Retries = %d, want 1 (one heartbeat-detected rollback)", res.Retries)
	}
	if res.FinalStep != 4 {
		t.Fatalf("FinalStep = %d, want 4", res.FinalStep)
	}
	// Detection must not have waited out the watchdog: the whole
	// campaign, including the failed attempt, finishes far inside one
	// deadline.
	if elapsed > deadline/4 {
		t.Fatalf("campaign took %v; heartbeat detection should beat the %v deadline", elapsed, deadline)
	}
	var confirm, failedNote bool
	for _, e := range res.Events {
		if e.Kind == "hb.confirm" {
			confirm = true
		}
		if e.Kind == "note" && strings.Contains(e.Detail, "heartbeat silent") {
			failedNote = true
		}
	}
	if !confirm || !failedNote {
		t.Fatalf("timeline missing hb.confirm/heartbeat failure note: %v", res.Events)
	}
}
