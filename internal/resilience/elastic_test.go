package resilience

import (
	"bytes"
	"crypto/sha256"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/mhd"
	"repro/internal/mpi"
	"repro/internal/snapshot"
)

// finalSHA hashes a campaign's final gathered state through its
// checkpoint bytes — the byte-identity gate every elastic scenario is
// held to.
func finalSHA(t *testing.T, res *Result) [32]byte {
	t.Helper()
	if res.Final == nil {
		t.Fatal("campaign has no final state")
	}
	var buf bytes.Buffer
	if err := snapshot.WriteCheckpoint(&buf, res.Final); err != nil {
		t.Fatal(err)
	}
	return sha256.Sum256(buf.Bytes())
}

// TestCampaignReshardResumption is the reshard-on-read gate: a campaign
// checkpointed by world shape A resumes at world shape B — bigger,
// smaller, or serial — and finishes byte-identical to the campaign that
// never stopped. 1↔N exercises the serial segment path on either side.
func TestCampaignReshardResumption(t *testing.T) {
	golden := testConfig(t, 4, 2)
	gres, err := RunCampaign(golden)
	if err != nil {
		t.Fatal(err)
	}
	want := finalSHA(t, gres)

	for _, tc := range []struct {
		name          string
		first, second int
	}{
		{"2to4", 2, 4},
		{"8to2", 8, 2},
		{"1to4", 1, 4},
		{"4to1", 4, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig(t, 2, 2)
			cfg.NProcs = tc.first
			if _, err := RunCampaign(cfg); err != nil {
				t.Fatal(err)
			}
			// "Interrupted": rerun the same directory with the full step
			// budget, but at a different world size.
			cfg.Steps = 4
			cfg.NProcs = tc.second
			res, err := RunCampaign(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Resumed || res.StartStep != 2 {
				t.Fatalf("Resumed=%v StartStep=%d, want resume from step 2", res.Resumed, res.StartStep)
			}
			if got := finalSHA(t, res); got != want {
				t.Errorf("campaign resumed at world %d from a world-%d checkpoint is not byte-identical to the golden",
					tc.second, tc.first)
			}
		})
	}
}

// TestCampaignRankReplaceSilent is the surgical-replacement gate: a
// rank goes silent mid-segment, the heartbeat confirms it dead, and the
// campaign replaces just that rank from the segment's checkpoint —
// survivors never unwind, no attempt is retried, the recovery happens
// well inside the watchdog deadline, and the final state is
// byte-identical to a fault-free campaign.
func TestCampaignRankReplaceSilent(t *testing.T) {
	golden := testConfig(t, 4, 2)
	golden.NProcs = 4
	gres, err := RunCampaign(golden)
	if err != nil {
		t.Fatal(err)
	}
	want := finalSHA(t, gres)

	cfg := testConfig(t, 4, 2)
	cfg.NProcs = 4
	cfg.Faults = mpi.NewFaultPlan().KillSilent(2, 3)
	cfg.Heartbeat = &mpi.Heartbeat{Interval: 3 * time.Millisecond, ConfirmAfter: 150 * time.Millisecond}
	cfg.Deadline = 30 * time.Second
	cfg.Replace = &mpi.Elastic{}
	res, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries != 0 {
		t.Errorf("Retries = %d, want 0 — a replacement must not roll the survivors back", res.Retries)
	}
	if len(res.Recoveries) != 1 {
		t.Fatalf("recoveries %+v, want exactly one rank replacement", res.Recoveries)
	}
	d := res.Recoveries[0]
	if d.Mode != RecoverReplace || d.Rank != 2 || d.Epoch != 1 || d.Segment != 1 || d.Attempt != 0 {
		t.Errorf("recovery decision %+v, want rank-replace of rank 2 at epoch 1 in segment 1 attempt 0", d)
	}
	if got := finalSHA(t, res); got != want {
		t.Error("campaign with a replaced rank is not byte-identical to the fault-free golden")
	}
	// The event timeline must show detection before replacement, and the
	// gap between them — the actual recovery time — must sit far inside
	// the watchdog deadline that whole-segment retries would have paid.
	confirmAt, replaceAt := time.Duration(-1), time.Duration(-1)
	for _, e := range res.Events {
		switch e.Kind {
		case "hb.confirm":
			if confirmAt < 0 {
				confirmAt = e.At
			}
		case "recover.replace":
			if replaceAt < 0 {
				replaceAt = e.At
			}
			if !strings.Contains(e.Detail, "rank=2") {
				t.Errorf("recover.replace detail %q does not name rank 2", e.Detail)
			}
		}
	}
	if confirmAt < 0 || replaceAt < 0 {
		t.Fatalf("timeline missing hb.confirm (%v) or recover.replace (%v):\n%v", confirmAt, replaceAt, res.Events)
	}
	if replaceAt < confirmAt {
		t.Errorf("recover.replace at %v precedes hb.confirm at %v", replaceAt, confirmAt)
	}
	if recovery := replaceAt - confirmAt; recovery > cfg.Deadline/10 {
		t.Errorf("recovery took %v, not well under the %v deadline", recovery, cfg.Deadline)
	}
}

// TestCampaignReplaceCorruptFallsBack: a replacement whose checkpoint
// reload fails (the segment's checkpoint went corrupt under it) must
// not strand the campaign — the attempt aborts and the rollback ladder
// rewinds to the older surviving checkpoint, replays, and still ends
// byte-identical to the golden.
func TestCampaignReplaceCorruptFallsBack(t *testing.T) {
	golden := testConfig(t, 4, 2)
	golden.NProcs = 4
	gres, err := RunCampaign(golden)
	if err != nil {
		t.Fatal(err)
	}
	want := finalSHA(t, gres)

	cfg := testConfig(t, 4, 2)
	cfg.NProcs = 4
	cfg.Faults = mpi.NewFaultPlan().Kill(2, 3)
	cfg.Deadline = 30 * time.Second
	cfg.Replace = &mpi.Elastic{}
	corrupted := false
	cfg.Perturb = func(seg, attempt int, sv *mhd.Solver) {
		// Rot the segment's own checkpoint on disk just before the
		// faulted segment runs: the replacement fence will try to
		// restore it and fail its checksum.
		if seg == 1 && !corrupted {
			corrupted = true
			path := filepath.Join(cfg.Dir, ckptName(2))
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Error(err)
				return
			}
			raw[len(raw)/2] ^= 0x40
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Error(err)
			}
		}
	}
	res, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The decision trail tells the whole story: replacement was chosen
	// first, its restore failed, and the campaign fell back to a rewind.
	var sawReplace, sawRewind bool
	for _, d := range res.Recoveries {
		switch d.Mode {
		case RecoverReplace:
			if sawRewind {
				t.Errorf("replacement decision after the rewind: %+v", res.Recoveries)
			}
			sawReplace = true
		case RecoverRewind:
			sawRewind = true
			if !strings.Contains(d.Cause, "rewinding to step 0") {
				t.Errorf("rewind cause %q does not name the rewind target", d.Cause)
			}
		}
	}
	if !sawReplace || !sawRewind {
		t.Fatalf("recoveries %+v, want a rank-replace followed by a rollback-rewind", res.Recoveries)
	}
	if res.Retries != 1 {
		t.Errorf("Retries = %d, want 1 (the aborted replacement attempt)", res.Retries)
	}
	if len(res.Diags) != 2 || res.FinalStep != 4 {
		t.Errorf("Diags=%d FinalStep=%d, want the rewound history truncated to 2 committed segments ending at 4",
			len(res.Diags), res.FinalStep)
	}
	if got := finalSHA(t, res); got != want {
		t.Error("campaign that rewound past a corrupt replacement checkpoint is not byte-identical to the golden")
	}
}

// TestCampaignRejectsMismatchedCheckpointDir: resuming a directory
// whose checkpoints hold a different resolution is a hard, clearly
// worded error — not a silent skip onto an older file.
func TestCampaignRejectsMismatchedCheckpointDir(t *testing.T) {
	cfg := testConfig(t, 2, 2)
	if _, err := RunCampaign(cfg); err != nil {
		t.Fatal(err)
	}
	cfg.Core.Nr, cfg.Core.Nt = 11, 17
	cfg.Steps = 4
	_, err := RunCampaign(cfg)
	if err == nil || !strings.Contains(err.Error(), "wrong directory or reconfigured resolution") {
		t.Fatalf("want a grid-mismatch rejection, got: %v", err)
	}
}
