// Package resilience drives fault-tolerant campaigns over the
// decomposed solver. A campaign is a long run split into checkpointed
// segments: each segment scatters the last committed state across the
// ranks, advances a fixed number of steps, gathers the result on rank 0
// and validates it. A segment that blows up (non-finite state or CFL
// collapse) or dies in the runtime (rank kill, communication deadline)
// is rolled back to the last checkpoint on disk and retried — with
// exponentially backed-off time step when the solver itself failed —
// until it commits or the retry budget is exhausted, at which point a
// post-mortem is saved next to the checkpoints and the campaign aborts
// gracefully. A campaign interrupted between checkpoints (crashed
// process, killed job) resumes from the newest checkpoint that still
// reads back valid, falling back past corrupt files.
package resilience

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/mhd"
	"repro/internal/mpi"
	"repro/internal/obs"
)

// ErrBlowUp tags segment failures caused by the solver itself (as
// opposed to runtime faults): a non-finite state after the segment, or
// a stable time step collapsed below Config.MinDT. Only blow-ups shrink
// the retry time step; transient runtime faults retry at full dt.
var ErrBlowUp = errors.New("solver blow-up")

// Config describes a checkpointed campaign. Zero values select
// defaults.
type Config struct {
	// Core selects the grid, physics and initial conditions.
	Core core.Config
	// NProcs is the world size of each segment run (default 2).
	NProcs int
	// Steps is the campaign's total step count.
	Steps int
	// CheckpointEvery is the segment length in steps; a checkpoint is
	// committed at every multiple (default: Steps, one segment).
	CheckpointEvery int
	// Dir is the campaign directory holding checkpoints and, on
	// failure, the post-mortem. Required; created if missing.
	Dir string
	// MaxRetries bounds the retries per segment after the first attempt
	// (default 3).
	MaxRetries int
	// Backoff scales the time step on each blow-up retry (default 0.5).
	Backoff float64
	// MinDT declares CFL collapse: a committed-candidate state whose
	// stable time step falls below it counts as a blow-up (0 disables).
	MinDT float64
	// Keep is how many checkpoints to retain on disk (default 2).
	Keep int
	// Deadline bounds every blocking runtime call inside a segment; on
	// expiry the segment fails with the runtime's diagnostic dump of
	// blocked ranks and pending envelopes (0 disables).
	Deadline time.Duration
	// Faults optionally scripts deterministic runtime failures; the
	// plan is stateful across segments and retries, so a scripted fault
	// hits once and the retry runs clean.
	Faults *mpi.FaultPlan
	// Reliability, when non-nil, runs every segment on the ack/retransmit
	// transport, so transient message drops, duplicates and delays are
	// absorbed in-flight instead of costing a rollback-and-retry.
	Reliability *mpi.Reliability
	// Heartbeat, when non-nil, enables in-segment rank-failure detection:
	// a dead rank fails the segment as a typed *mpi.RankFailedError
	// within a few heartbeat intervals, instead of at Deadline expiry.
	Heartbeat *mpi.Heartbeat
	// DTSchedule overrides the per-segment time step (indexed by
	// segment); segments beyond its length auto-estimate. Replaying a
	// finished campaign's Result.DTs reproduces its committed
	// trajectory bit-identically.
	DTSchedule []float64
	// Perturb, when set, mutates the state a segment starts from — a
	// test hook for injecting mid-campaign blow-ups.
	Perturb func(seg, attempt int, sv *mhd.Solver)
	// Obs, when non-nil, records the whole campaign into one shared
	// observability recorder: every segment's rank spans land on the
	// same per-rank tracks, checkpoint reads/writes land on the driver
	// track, and the event log's segment/retry notes become trace
	// instants.
	Obs *obs.Recorder
	// Events optionally supplies a caller-owned event log for the
	// campaign timeline (so the caller can merge it into a trace
	// afterwards); nil lets the campaign create its own.
	Events *mpi.EventLog
}

func (c Config) withDefaults() Config {
	c.Core = c.Core.WithDefaults()
	if c.NProcs == 0 {
		c.NProcs = 2
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = c.Steps
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	//yyvet:ignore float-eq zero-valued config field means unset; defaulting keys on the exact zero value
	if c.Backoff == 0 {
		c.Backoff = 0.5
	}
	if c.Keep == 0 {
		c.Keep = 2
	}
	return c
}

// Result is the campaign's committed history.
type Result struct {
	// Diags holds one globally reduced diagnostics record per committed
	// segment.
	Diags []mhd.Diagnostics
	// DTs holds the committed time step of each segment — feed it back
	// as Config.DTSchedule to reproduce the trajectory bit-identically.
	DTs []float64
	// Retries counts failed segment attempts across the campaign.
	Retries int
	// Resumed reports whether the campaign picked up from a checkpoint
	// already on disk, and StartStep where it picked up.
	Resumed   bool
	StartStep int
	// FinalStep is the step count reached; Final the gathered state.
	FinalStep int
	Final     *mhd.Solver
	// Events is the campaign's fault/transport/heartbeat timeline,
	// accumulated across every segment and retry (and written to the
	// post-mortem when the campaign aborts).
	Events []mpi.Event
}

// RunCampaign executes (or resumes) a checkpointed campaign.
func RunCampaign(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Steps <= 0 {
		return nil, fmt.Errorf("resilience: campaign needs a positive step count, got %d", cfg.Steps)
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("resilience: campaign needs a directory for checkpoints")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	spec := cfg.Core.Spec()
	layout, err := decomp.NewLayout(spec, cfg.NProcs)
	if err != nil {
		return nil, err
	}
	// One shared log across every segment and retry: the post-mortem can
	// then show the whole campaign's fault history, not just the last
	// attempt's.
	events := cfg.Events
	if events == nil {
		events = mpi.NewEventLog()
	}
	rc := mpi.RunConfig{
		Deadline:    cfg.Deadline,
		Faults:      cfg.Faults,
		Reliability: cfg.Reliability,
		Heartbeat:   cfg.Heartbeat,
		Events:      events,
		Obs:         cfg.Obs,
	}
	// The campaign driver records on its own pseudo-rank track:
	// checkpoint I/O and validation between segments.
	drv := cfg.Obs.Driver()
	drv.Open()
	defer drv.Close()

	res := &Result{}
	defer func() { res.Events = events.Events() }()
	cr := drv.Begin(obs.SpanCkptRead)
	state, _, err := loadNewest(cfg.Dir, spec)
	cr.End()
	if err != nil {
		return nil, err
	}
	if state == nil {
		state, err = mhd.NewSolver(spec, *cfg.Core.Params, *cfg.Core.IC)
		if err != nil {
			return nil, err
		}
		// Commit the origin so the very first rollback has a checkpoint
		// to reload.
		cw := drv.Begin(obs.SpanCkptWrite)
		_, err := writeCheckpointFile(cfg.Dir, state)
		cw.End()
		if err != nil {
			return nil, err
		}
	} else {
		res.Resumed = true
	}
	res.StartStep = state.Step
	res.FinalStep = state.Step
	res.Final = state

	for state.Step < cfg.Steps {
		segStart := state.Step
		segIdx := segStart / cfg.CheckpointEvery
		n := cfg.CheckpointEvery - segStart%cfg.CheckpointEvery
		if segStart+n > cfg.Steps {
			n = cfg.Steps - segStart
		}

		committed := false
		blowUps := 0
		var lastErr error
		for attempt := 0; attempt <= cfg.MaxRetries; attempt++ {
			if attempt > 0 {
				res.Retries++
				// Roll back: the failed attempt may have consumed or
				// corrupted the in-memory state, so reload the segment's
				// own checkpoint from disk.
				rb := drv.Begin(obs.SpanCkptRead)
				st, _, err := loadNewest(cfg.Dir, spec)
				rb.End()
				if err != nil {
					return res, err
				}
				if st == nil || st.Step != segStart {
					return res, fmt.Errorf("resilience: rollback found no checkpoint at step %d", segStart)
				}
				state = st
			}
			var dt float64
			if segIdx < len(cfg.DTSchedule) {
				dt = cfg.DTSchedule[segIdx]
			} else {
				dt = state.EstimateDT(cfg.Core.SafetyFactor)
				for b := 0; b < blowUps; b++ {
					dt *= cfg.Backoff
				}
			}
			if cfg.Perturb != nil {
				cfg.Perturb(segIdx, attempt, state)
			}
			events.Notef("note", "segment start=%d steps=%d attempt=%d dt=%.6g", segStart, n, attempt, dt)
			next, diag, err := runSegment(cfg.Core, layout, rc, state, dt, n)
			if err == nil {
				err = validate(next, cfg)
			}
			if err != nil {
				events.Notef("note", "segment start=%d attempt=%d failed: %v", segStart, attempt, err)
			}
			if err == nil {
				state = next
				res.Diags = append(res.Diags, diag)
				res.DTs = append(res.DTs, dt)
				cw := drv.Begin(obs.SpanCkptWrite)
				_, werr := writeCheckpointFile(cfg.Dir, state)
				cw.End()
				if werr != nil {
					return res, werr
				}
				if err := prune(cfg.Dir, cfg.Keep); err != nil {
					return res, err
				}
				committed = true
				break
			}
			if errors.Is(err, ErrBlowUp) {
				blowUps++
			}
			lastErr = err
		}
		if !committed {
			pm := writePostmortem(cfg.Dir, segStart, cfg.MaxRetries+1, lastErr, res, events)
			return res, fmt.Errorf("resilience: segment at step %d failed after %d attempts (post-mortem: %s): %w",
				segStart, cfg.MaxRetries+1, pm, lastErr)
		}
		res.FinalStep = state.Step
		res.Final = state
	}
	return res, nil
}

// runSegment executes one checkpoint interval on the decomposed
// runtime: scatter the committed state, advance steps at dt, gather and
// diagnose on rank 0. Rank-side errors abort the world so no peer is
// left blocked.
func runSegment(ccfg core.Config, layout *decomp.Layout, rc mpi.RunConfig, src *mhd.Solver, dt float64, steps int) (*mhd.Solver, mhd.Diagnostics, error) {
	var (
		mu   sync.Mutex
		next *mhd.Solver
		diag mhd.Diagnostics
	)
	err := mpi.RunWith(layout.NProcs, rc, func(w *mpi.Comm) {
		rr := rc.Obs.RankFor(w.Rank())
		rr.Open()
		defer rr.Close()
		sp := rr.Begin(obs.SpanSetup)
		r, err := decomp.NewRankWorkers(w, layout, *ccfg.Params, *ccfg.IC, ccfg.Workers)
		if err != nil {
			w.Abort(err)
		}
		defer r.Close()
		r.SetObs(rr)
		sp.End()
		var s0 *mhd.Solver
		if w.Rank() == 0 {
			s0 = src
		}
		if err := r.ScatterState(s0); err != nil {
			w.Abort(err)
		}
		for i := 0; i < steps; i++ {
			r.Advance(dt)
		}
		d := r.Diagnose()
		sv, err := r.GatherState()
		if err != nil {
			w.Abort(err)
		}
		if w.Rank() == 0 {
			mu.Lock()
			next, diag = sv, d
			mu.Unlock()
		}
	})
	if err != nil {
		return nil, mhd.Diagnostics{}, err
	}
	return next, diag, nil
}

// validate decides whether a gathered segment result is committable.
func validate(sv *mhd.Solver, cfg Config) error {
	if err := sv.CheckFinite(); err != nil {
		return fmt.Errorf("%w: %v", ErrBlowUp, err)
	}
	if cfg.MinDT > 0 {
		if dt := sv.EstimateDT(cfg.Core.SafetyFactor); dt < cfg.MinDT {
			return fmt.Errorf("%w: CFL collapse: stable dt %.3e fell below the %.3e floor", ErrBlowUp, dt, cfg.MinDT)
		}
	}
	return nil
}
