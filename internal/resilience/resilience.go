// Package resilience drives fault-tolerant campaigns over the
// decomposed solver. A campaign is a long run split into checkpointed
// segments: each segment scatters the last committed state across the
// ranks, advances a fixed number of steps, gathers the result on rank 0
// and validates it. A segment that blows up (non-finite state or CFL
// collapse) or dies in the runtime (rank kill, communication deadline)
// is rolled back to the last checkpoint on disk and retried — with
// exponentially backed-off time step when the solver itself failed —
// until it commits or the retry budget is exhausted, at which point a
// post-mortem is saved next to the checkpoints and the campaign aborts
// gracefully. A campaign interrupted between checkpoints (crashed
// process, killed job) resumes from the newest checkpoint that still
// reads back valid, falling back past corrupt files.
package resilience

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/mhd"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/snapshot"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// ErrBlowUp tags segment failures caused by the solver itself (as
// opposed to runtime faults): a non-finite state after the segment, or
// a stable time step collapsed below Config.MinDT. Only blow-ups shrink
// the retry time step; transient runtime faults retry at full dt.
var ErrBlowUp = errors.New("solver blow-up")

// Config describes a checkpointed campaign. Zero values select
// defaults.
type Config struct {
	// Core selects the grid, physics and initial conditions.
	Core core.Config
	// NProcs is the world size of each segment run (default 2). NProcs 1
	// runs segments serially with no decomposition at all; because the
	// checkpoint format is layout-neutral, a campaign may be stopped and
	// resumed at a different NProcs (including to or from 1) and its
	// committed trajectory continues bit-identically.
	NProcs int
	// Steps is the campaign's total step count.
	Steps int
	// CheckpointEvery is the segment length in steps; a checkpoint is
	// committed at every multiple (default: Steps, one segment).
	CheckpointEvery int
	// Dir is the campaign directory holding checkpoints and, on
	// failure, the post-mortem. Required unless Store is set; created
	// if missing.
	Dir string
	// Store, when non-nil, replaces the loose-file directory with the
	// content-addressed artifact store: checkpoints dedup by sha256
	// (bit-identical reruns share one blob), every segment commit
	// appends a Merkle-chained ledger manifest recording the artifact
	// hashes, the recovery decisions taken, and an event-log digest,
	// and `yystore verify` can audit the whole campaign offline.
	Store *store.Store
	// RunID names this campaign inside the store's ref namespace
	// (refs/runs/<RunID>/...); default "campaign". Store mode only.
	RunID string
	// MaxRetries bounds the retries per segment after the first attempt
	// (default 3).
	MaxRetries int
	// Backoff scales the time step on each blow-up retry (default 0.5).
	Backoff float64
	// MinDT declares CFL collapse: a committed-candidate state whose
	// stable time step falls below it counts as a blow-up (0 disables).
	MinDT float64
	// Keep is how many checkpoints to retain on disk (default 2).
	Keep int
	// Deadline bounds every blocking runtime call inside a segment; on
	// expiry the segment fails with the runtime's diagnostic dump of
	// blocked ranks and pending envelopes (0 disables).
	Deadline time.Duration
	// Faults optionally scripts deterministic runtime failures; the
	// plan is stateful across segments and retries, so a scripted fault
	// hits once and the retry runs clean.
	Faults *mpi.FaultPlan
	// Reliability, when non-nil, runs every segment on the ack/retransmit
	// transport, so transient message drops, duplicates and delays are
	// absorbed in-flight instead of costing a rollback-and-retry.
	Reliability *mpi.Reliability
	// Heartbeat, when non-nil, enables in-segment rank-failure detection:
	// a dead rank fails the segment as a typed *mpi.RankFailedError
	// within a few heartbeat intervals, instead of at Deadline expiry.
	Heartbeat *mpi.Heartbeat
	// Replace, when non-nil, enables surgical rank replacement inside a
	// segment: a confirmed-dead rank (scripted kill, or heartbeat-
	// confirmed silence) is respawned from the segment's own checkpoint
	// and rejoined at a new world-membership epoch while the survivors
	// park at a barrier — the segment continues instead of costing a
	// whole-campaign rollback. The rollback ladder remains the fallback
	// when replacement is unavailable (budget exhausted, reload failed).
	// Requires NProcs > 1; silent deaths additionally need Heartbeat.
	Replace *mpi.Elastic
	// DTSchedule overrides the per-segment time step (indexed by
	// segment); segments beyond its length auto-estimate. Replaying a
	// finished campaign's Result.DTs reproduces its committed
	// trajectory bit-identically.
	DTSchedule []float64
	// Perturb, when set, mutates the state a segment starts from — a
	// test hook for injecting mid-campaign blow-ups. It applies to the
	// epoch-0 scatter only: a segment re-entered after a rank
	// replacement restores from its committed checkpoint, unperturbed.
	Perturb func(seg, attempt int, sv *mhd.Solver)
	// Obs, when non-nil, records the whole campaign into one shared
	// observability recorder: every segment's rank spans land on the
	// same per-rank tracks, checkpoint reads/writes land on the driver
	// track, and the event log's segment/retry notes become trace
	// instants.
	Obs *obs.Recorder
	// Events optionally supplies a caller-owned event log for the
	// campaign timeline (so the caller can merge it into a trace
	// afterwards); nil lets the campaign create its own.
	Events *mpi.EventLog
	// Telemetry, when non-nil, is the live telemetry plane: every rank
	// publishes its step snapshot into a lock-free slot, the driver
	// feeds the plane campaign progress (segment starts, commits,
	// retries, completion) for the /progress and /metrics endpoints,
	// and — unless the plane disables it — each committed segment is
	// bracketed by a CPU profile whose pprof blob (plus a heap snapshot
	// at the boundary) is durably saved next to the checkpoint. The
	// plane reads shared memory only; a telemetrized campaign's
	// committed trajectory is sha256-identical to a dark one.
	Telemetry *telemetry.Plane
}

func (c Config) withDefaults() Config {
	c.Core = c.Core.WithDefaults()
	if c.NProcs == 0 {
		c.NProcs = 2
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = c.Steps
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	//yyvet:ignore float-eq zero-valued config field means unset; defaulting keys on the exact zero value
	if c.Backoff == 0 {
		c.Backoff = 0.5
	}
	if c.Keep == 0 {
		c.Keep = 2
	}
	return c
}

// runName labels the campaign for telemetry and artifact commits: the
// store run id when the ledger substrate is in use, the checkpoint
// directory otherwise.
func (c Config) runName() string {
	if c.Store != nil {
		if c.RunID != "" {
			return c.RunID
		}
		return "campaign"
	}
	return c.Dir
}

// RecoveryMode names one of the campaign's recovery paths, most to
// least surgical.
type RecoveryMode string

const (
	// RecoverReplace: only the dead rank was respawned from the
	// segment's checkpoint; survivors kept their world.
	RecoverReplace RecoveryMode = "rank-replace"
	// RecoverRollback: the whole segment was rolled back to its own
	// checkpoint and retried.
	RecoverRollback RecoveryMode = "rollback"
	// RecoverRewind: the segment's own checkpoint was unusable, so the
	// campaign rewound to an older committed checkpoint and replays
	// forward from there.
	RecoverRewind RecoveryMode = "rollback-rewind"
)

// RecoveryDecision records one recovery the campaign performed: where
// it happened, which path was chosen, and the error that forced it.
// The post-mortem renders these as its "recovery decisions" section.
type RecoveryDecision struct {
	// Segment is the index of the affected segment; Attempt the attempt
	// number within it (0 is the first try).
	Segment int
	Attempt int
	Mode    RecoveryMode
	// Rank is the replaced world rank and Epoch the membership epoch
	// after the fence (rank-replace only).
	Rank  int
	Epoch int
	// Cause is the triggering error's text.
	Cause string
}

func (d RecoveryDecision) String() string {
	if d.Mode == RecoverReplace {
		return fmt.Sprintf("segment %d attempt %d: %s rank=%d epoch=%d (%s)",
			d.Segment, d.Attempt, d.Mode, d.Rank, d.Epoch, d.Cause)
	}
	return fmt.Sprintf("segment %d attempt %d: %s (%s)", d.Segment, d.Attempt, d.Mode, d.Cause)
}

// Result is the campaign's committed history.
type Result struct {
	// Diags holds one globally reduced diagnostics record per committed
	// segment.
	Diags []mhd.Diagnostics
	// DTs holds the committed time step of each segment — feed it back
	// as Config.DTSchedule to reproduce the trajectory bit-identically.
	DTs []float64
	// Retries counts failed segment attempts across the campaign.
	Retries int
	// Resumed reports whether the campaign picked up from a checkpoint
	// already on disk, and StartStep where it picked up.
	Resumed   bool
	StartStep int
	// FinalStep is the step count reached; Final the gathered state.
	FinalStep int
	Final     *mhd.Solver
	// Events is the campaign's fault/transport/heartbeat timeline,
	// accumulated across every segment and retry (and written to the
	// post-mortem when the campaign aborts).
	Events []mpi.Event
	// Recoveries lists every recovery decision the campaign made — rank
	// replacements and rollbacks alike — in the order they happened.
	Recoveries []RecoveryDecision
}

// RunCampaign executes (or resumes) a checkpointed campaign.
func RunCampaign(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Steps <= 0 {
		return nil, fmt.Errorf("resilience: campaign needs a positive step count, got %d", cfg.Steps)
	}
	if cfg.Dir == "" && cfg.Store == nil {
		return nil, fmt.Errorf("resilience: campaign needs a directory or a store for checkpoints")
	}
	if cfg.Store == nil {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, err
		}
	}
	sink := cfg.sink()
	spec := cfg.Core.Spec()
	// NProcs 1 is the serial path: no layout, no runtime — segments
	// advance a clone of the committed state directly.
	var layout *decomp.Layout
	if cfg.NProcs != 1 {
		l, err := decomp.NewLayout(spec, cfg.NProcs)
		if err != nil {
			return nil, err
		}
		layout = l
	}
	// One shared log across every segment and retry: the post-mortem can
	// then show the whole campaign's fault history, not just the last
	// attempt's.
	events := cfg.Events
	if events == nil {
		events = mpi.NewEventLog()
	}
	rc := mpi.RunConfig{
		Deadline:    cfg.Deadline,
		Faults:      cfg.Faults,
		Reliability: cfg.Reliability,
		Heartbeat:   cfg.Heartbeat,
		Events:      events,
		Obs:         cfg.Obs,
	}
	plane := cfg.Telemetry
	plane.Attach(telemetry.Campaign{
		Run:        cfg.runName(),
		TotalSteps: cfg.Steps,
		MinDT:      cfg.MinDT,
		Events:     events,
		Recorder:   cfg.Obs,
		Store:      cfg.Store,
	})
	// The campaign driver records on its own pseudo-rank track:
	// checkpoint I/O and validation between segments.
	drv := cfg.Obs.Driver()
	drv.Open()
	defer drv.Close()

	res := &Result{}
	// Recovery decisions are appended from two places: the campaign
	// goroutine (rollbacks, rewinds) and the runtime's monitor goroutine
	// (a replacement fence firing mid-segment via OnReplace).
	var recMu sync.Mutex
	curSeg, curAttempt := 0, 0
	if cfg.Replace != nil && cfg.NProcs > 1 {
		el := *cfg.Replace
		user := el.OnReplace
		el.OnReplace = func(rank, epoch int, cause error) {
			recMu.Lock()
			res.Recoveries = append(res.Recoveries, RecoveryDecision{
				Segment: curSeg, Attempt: curAttempt, Mode: RecoverReplace,
				Rank: rank, Epoch: epoch, Cause: cause.Error(),
			})
			recMu.Unlock()
			if user != nil {
				user(rank, epoch, cause)
			}
		}
		rc.Elastic = &el
	}
	defer func() { res.Events = events.Events() }()
	// A crash between a past commit's temp write and its rename strands
	// a *.tmp file that nothing would ever reclaim; sweep such orphans
	// before touching the checkpoints.
	if swept, err := sink.sweep(); err != nil {
		return nil, fmt.Errorf("resilience: sweeping orphan temp files: %w", err)
	} else if len(swept) > 0 {
		events.Notef("note", "swept %d orphan temp file(s): %v", len(swept), swept)
	}
	// lastRec marks how much of res.Recoveries earlier commits have
	// already reported, so each ledger entry carries only its own
	// segment's recovery decisions.
	lastRec := 0
	commitMeta := func(note string) segMeta {
		recMu.Lock()
		var recs []string
		for _, d := range res.Recoveries[lastRec:] {
			recs = append(recs, d.String())
		}
		lastRec = len(res.Recoveries)
		recMu.Unlock()
		return segMeta{note: note, recoveries: recs, events: events}
	}
	cr := drv.Begin(obs.SpanCkptRead)
	state, _, err := sink.newest(spec)
	cr.End()
	if err != nil {
		return nil, err
	}
	if state == nil {
		state, err = mhd.NewSolver(spec, *cfg.Core.Params, *cfg.Core.IC)
		if err != nil {
			return nil, err
		}
		// Commit the origin so the very first rollback has a checkpoint
		// to reload.
		cw := drv.Begin(obs.SpanCkptWrite)
		err := sink.write(state, commitMeta("origin"))
		cw.End()
		if err != nil {
			return nil, err
		}
	} else {
		res.Resumed = true
	}
	res.StartStep = state.Step
	res.FinalStep = state.Step
	res.Final = state

	// commitEnds records the end step of every segment this run
	// committed (parallel to res.Diags/res.DTs), so a rewind can
	// truncate the committed history it is about to replay over.
	var commitEnds []int
	rewinds := 0
	for state.Step < cfg.Steps {
		segStart := state.Step
		segIdx := segStart / cfg.CheckpointEvery
		n := cfg.CheckpointEvery - segStart%cfg.CheckpointEvery
		if segStart+n > cfg.Steps {
			n = cfg.Steps - segStart
		}
		// reload is the rank-replacement restore path: a world
		// re-entering its segment at a fenced epoch restores the
		// segment's own committed checkpoint from disk, because the
		// respawned rank never saw the original scatter and the
		// survivors' in-segment progress was fenced away with the dead
		// epoch. Any failure here aborts the attempt and falls back to
		// the rollback ladder.
		reload := func() (*snapshot.Interior, error) {
			cr := drv.Begin(obs.SpanCkptRead)
			defer cr.End()
			in, err := sink.segment(segStart)
			if err != nil {
				return nil, err
			}
			if in.Spec != spec {
				return nil, fmt.Errorf("resilience: replacement checkpoint grid %+v does not match campaign %+v", in.Spec, spec)
			}
			if in.Step != segStart {
				return nil, fmt.Errorf("resilience: replacement checkpoint holds step %d, want segment start %d", in.Step, segStart)
			}
			return in, nil
		}

		committed := false
		rewound := false
		blowUps := 0
		var lastErr error
		for attempt := 0; attempt <= cfg.MaxRetries; attempt++ {
			if attempt > 0 {
				res.Retries++
				plane.Retry()
				// Roll back: the failed attempt may have consumed or
				// corrupted the in-memory state, so reload the segment's
				// own checkpoint from disk.
				rb := drv.Begin(obs.SpanCkptRead)
				st, _, err := sink.newest(spec)
				rb.End()
				if err != nil {
					return res, err
				}
				if st == nil || st.Step > segStart {
					return res, fmt.Errorf("resilience: rollback found no checkpoint at step %d", segStart)
				}
				if st.Step < segStart {
					// The segment's own checkpoint is gone or corrupt
					// but an older one survives: rewind the whole
					// campaign to it and replay forward from there.
					if rewinds >= cfg.MaxRetries {
						lastErr = fmt.Errorf("resilience: rewind budget exhausted after %d rewinds: %w", rewinds, lastErr)
						break
					}
					rewinds++
					recMu.Lock()
					res.Recoveries = append(res.Recoveries, RecoveryDecision{
						Segment: segIdx, Attempt: attempt, Mode: RecoverRewind,
						Cause: fmt.Sprintf("no usable checkpoint at step %d, rewinding to step %d after: %v", segStart, st.Step, lastErr),
					})
					recMu.Unlock()
					events.Notef("note", "rewind from=%d to=%d attempt=%d", segStart, st.Step, attempt)
					for len(commitEnds) > 0 && commitEnds[len(commitEnds)-1] > st.Step {
						commitEnds = commitEnds[:len(commitEnds)-1]
						res.Diags = res.Diags[:len(res.Diags)-1]
						res.DTs = res.DTs[:len(res.DTs)-1]
					}
					state = st
					rewound = true
					break
				}
				recMu.Lock()
				res.Recoveries = append(res.Recoveries, RecoveryDecision{
					Segment: segIdx, Attempt: attempt, Mode: RecoverRollback, Cause: lastErr.Error(),
				})
				recMu.Unlock()
				state = st
			}
			var dt float64
			if segIdx < len(cfg.DTSchedule) {
				dt = cfg.DTSchedule[segIdx]
			} else {
				dt = state.EstimateDT(cfg.Core.SafetyFactor)
				for b := 0; b < blowUps; b++ {
					dt *= cfg.Backoff
				}
			}
			if cfg.Perturb != nil {
				cfg.Perturb(segIdx, attempt, state)
			}
			recMu.Lock()
			curSeg, curAttempt = segIdx, attempt
			recMu.Unlock()
			plane.SegmentStart(segIdx, attempt)
			events.Notef("note", "segment start=%d steps=%d attempt=%d dt=%.6g", segStart, n, attempt, dt)
			// Continuous profiling: bracket the attempt with a CPU
			// profile. Profiling is signal-driven and process-global — it
			// perturbs scheduling, never arithmetic — so the committed
			// trajectory is unchanged.
			var prof *telemetry.SegProfiler
			if plane.ProfileSegments() {
				prof = telemetry.StartSegProfile()
			}
			var (
				next *mhd.Solver
				diag mhd.Diagnostics
				err  error
			)
			if cfg.NProcs == 1 {
				next, diag, err = runSerialSegment(state, dt, n)
			} else {
				next, diag, err = runSegment(cfg.Core, layout, rc, plane, state, dt, n, reload)
			}
			cpuProfile := prof.Stop()
			if err == nil {
				err = validate(next, cfg)
			}
			if err != nil {
				events.Notef("note", "segment start=%d attempt=%d failed: %v", segStart, attempt, err)
			}
			if err == nil {
				state = next
				res.Diags = append(res.Diags, diag)
				res.DTs = append(res.DTs, dt)
				commitEnds = append(commitEnds, state.Step)
				cw := drv.Begin(obs.SpanCkptWrite)
				werr := sink.write(state, commitMeta("segment"))
				cw.End()
				if werr != nil {
					// Checkpoint-write failures abort immediately — never
					// into the dt-backoff retry ladder. In particular a
					// full disk surfaces as the typed *store.DiskFullError.
					return res, werr
				}
				if err := sink.prune(cfg.Keep); err != nil {
					return res, err
				}
				plane.Commit(state.Step)
				// Save the committed attempt's profiles next to its
				// checkpoint. Best-effort: a campaign never fails over a
				// lost profile.
				if plane.ProfileSegments() {
					var arts []runArtifact
					if len(cpuProfile) > 0 {
						arts = append(arts, runArtifact{
							name: fmt.Sprintf("profile-cpu-%09d.pb.gz", state.Step),
							role: "profile.cpu", data: cpuProfile,
						})
					}
					if heap := telemetry.HeapProfile(); len(heap) > 0 {
						arts = append(arts, runArtifact{
							name: fmt.Sprintf("profile-heap-%09d.pb.gz", state.Step),
							role: "profile.heap", data: heap,
						})
					}
					if err := sink.artifacts(state.Step, "profiles", arts); err != nil {
						events.Notef("note", "profile commit at step %d failed: %v", state.Step, err)
					}
				}
				committed = true
				break
			}
			if errors.Is(err, ErrBlowUp) {
				blowUps++
			}
			lastErr = err
		}
		if rewound {
			continue
		}
		if !committed {
			// Latch the final alert state before the failure account is
			// written, so the post-mortem's timeline carries the
			// telemetry.alert events that saw the campaign die.
			plane.Evaluate()
			pm := sink.postmortem(postmortemText(segStart, cfg.MaxRetries+1, lastErr, res, events))
			return res, fmt.Errorf("resilience: segment at step %d failed after %d attempts (post-mortem: %s): %w",
				segStart, cfg.MaxRetries+1, pm, lastErr)
		}
		res.FinalStep = state.Step
		res.Final = state
	}
	plane.Finish(res.FinalStep)
	return res, nil
}

// runSerialSegment is the NProcs-1 path: no decomposition, no runtime —
// the segment advances a clone of the committed state directly. The
// clone goes through the layout-neutral interior form, the same restore
// a decomposed world performs, so serial segments commit byte-identical
// checkpoints to any world size (the 1↔N halves of the reshard gates).
func runSerialSegment(src *mhd.Solver, dt float64, steps int) (*mhd.Solver, mhd.Diagnostics, error) {
	sv, err := snapshot.InteriorOf(src).Solver()
	if err != nil {
		return nil, mhd.Diagnostics{}, err
	}
	for i := 0; i < steps; i++ {
		sv.Advance(dt)
	}
	return sv, sv.Diagnose(), nil
}

// runSegment executes one checkpoint interval on the decomposed
// runtime: scatter the committed state, advance steps at dt, gather and
// diagnose on rank 0. Rank-side errors abort the world so no peer is
// left blocked. Under rc.Elastic the rank function may re-enter at a
// later membership epoch after a replacement fence; re-entries restore
// from the segment's checkpoint via reload instead of the in-memory
// src, and rank 0's gathered result is overwritten so the final epoch
// wins.
func runSegment(ccfg core.Config, layout *decomp.Layout, rc mpi.RunConfig, plane *telemetry.Plane, src *mhd.Solver, dt float64, steps int, reload func() (*snapshot.Interior, error)) (*mhd.Solver, mhd.Diagnostics, error) {
	var (
		mu   sync.Mutex
		next *mhd.Solver
		diag mhd.Diagnostics
	)
	err := mpi.RunWith(layout.NProcs, rc, func(w *mpi.Comm) {
		rr := rc.Obs.RankFor(w.Rank())
		rr.Open()
		defer rr.Close()
		sp := rr.Begin(obs.SpanSetup)
		r, err := decomp.NewRankWorkers(w, layout, *ccfg.Params, *ccfg.IC, ccfg.Workers)
		if err != nil {
			w.Abort(err)
		}
		defer r.Close()
		r.SetObs(rr)
		r.SetTelemetry(plane.Rank(w.Rank()))
		sp.End()
		var in *snapshot.Interior
		if w.Rank() == 0 {
			if w.Epoch() > 0 {
				ld, err := reload()
				if err != nil {
					w.Abort(fmt.Errorf("resilience: restoring checkpoint after rank replacement: %w", err))
				}
				in = ld
			} else {
				in = snapshot.InteriorOf(src)
			}
		}
		if err := r.ScatterInterior(in); err != nil {
			w.Abort(err)
		}
		for i := 0; i < steps; i++ {
			r.Advance(dt)
		}
		d := r.Diagnose()
		sv, err := r.GatherState()
		if err != nil {
			w.Abort(err)
		}
		if w.Rank() == 0 {
			mu.Lock()
			next, diag = sv, d
			mu.Unlock()
		}
	})
	if err != nil {
		return nil, mhd.Diagnostics{}, err
	}
	return next, diag, nil
}

// validate decides whether a gathered segment result is committable.
func validate(sv *mhd.Solver, cfg Config) error {
	if err := sv.CheckFinite(); err != nil {
		return fmt.Errorf("%w: %v", ErrBlowUp, err)
	}
	if cfg.MinDT > 0 {
		if dt := sv.EstimateDT(cfg.Core.SafetyFactor); dt < cfg.MinDT {
			return fmt.Errorf("%w: CFL collapse: stable dt %.3e fell below the %.3e floor", ErrBlowUp, dt, cfg.MinDT)
		}
	}
	return nil
}
