package resilience

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mhd"
	"repro/internal/mpi"
)

// testConfig is a small 2-rank campaign that runs in well under a
// second per segment.
func testConfig(t *testing.T, steps, every int) Config {
	t.Helper()
	return Config{
		Core:            core.Config{Nr: 9, Nt: 13},
		NProcs:          2,
		Steps:           steps,
		CheckpointEvery: every,
		Dir:             t.TempDir(),
	}
}

func TestCampaignCleanRun(t *testing.T) {
	cfg := testConfig(t, 6, 2)
	res, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resumed || res.StartStep != 0 {
		t.Errorf("fresh campaign reported Resumed=%v StartStep=%d", res.Resumed, res.StartStep)
	}
	if res.FinalStep != 6 || len(res.Diags) != 3 || len(res.DTs) != 3 || res.Retries != 0 {
		t.Errorf("clean run: FinalStep=%d Diags=%d DTs=%d Retries=%d",
			res.FinalStep, len(res.Diags), len(res.DTs), res.Retries)
	}
	steps, err := listCheckpoints(cfg.Dir)
	if err != nil {
		t.Fatal(err)
	}
	// Keep defaults to 2: the newest two of {0, 2, 4, 6} survive.
	if len(steps) != 2 || steps[0] != 4 || steps[1] != 6 {
		t.Errorf("kept checkpoints %v, want [4 6]", steps)
	}
}

// TestRollbackBackoffBitIdentical is acceptance criterion (b): an
// injected mid-campaign blow-up triggers rollback to the last
// checkpoint and a dt backoff retry, the campaign completes, and its
// diagnostics are bit-identical to an unfaulted campaign running the
// same effective dt schedule.
func TestRollbackBackoffBitIdentical(t *testing.T) {
	faulted := testConfig(t, 6, 2)
	faulted.Perturb = func(seg, attempt int, sv *mhd.Solver) {
		if seg == 1 && attempt == 0 {
			data := sv.Panels[0].U.Rho.Data
			data[len(data)/2] = math.NaN()
		}
	}
	res, err := RunCampaign(faulted)
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries != 1 {
		t.Fatalf("Retries = %d, want 1 (one blow-up rollback)", res.Retries)
	}
	if len(res.DTs) != 3 {
		t.Fatalf("committed %d segments, want 3", len(res.DTs))
	}
	// The blown-up segment committed at a backed-off dt.
	if !(res.DTs[1] < res.DTs[0]) {
		t.Errorf("segment 1 dt %v not backed off from %v", res.DTs[1], res.DTs[0])
	}

	clean := testConfig(t, 6, 2)
	clean.DTSchedule = res.DTs
	ref, err := RunCampaign(clean)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Retries != 0 {
		t.Fatalf("reference campaign retried %d times", ref.Retries)
	}
	if len(ref.Diags) != len(res.Diags) {
		t.Fatalf("reference committed %d segments, faulted %d", len(ref.Diags), len(res.Diags))
	}
	for i := range res.Diags {
		if res.Diags[i] != ref.Diags[i] {
			t.Errorf("segment %d diagnostics differ:\nfaulted  %+v\nreference %+v", i, res.Diags[i], ref.Diags[i])
		}
	}
}

// TestResumeFromDisk is acceptance criterion (c): a campaign
// interrupted between checkpoints resumes from the newest checkpoint
// on disk and completes, matching an uninterrupted campaign.
func TestResumeFromDisk(t *testing.T) {
	interrupted := testConfig(t, 4, 2)
	first, err := RunCampaign(interrupted)
	if err != nil {
		t.Fatal(err)
	}
	// "Interrupted": re-run the same directory with the full step
	// budget, as a fresh process restart would.
	interrupted.Steps = 8
	resumed, err := RunCampaign(interrupted)
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.Resumed || resumed.StartStep != 4 {
		t.Fatalf("Resumed=%v StartStep=%d, want resume from step 4", resumed.Resumed, resumed.StartStep)
	}
	if resumed.FinalStep != 8 || len(resumed.Diags) != 2 {
		t.Fatalf("resumed campaign FinalStep=%d Diags=%d", resumed.FinalStep, len(resumed.Diags))
	}

	full := testConfig(t, 8, 2)
	ref, err := RunCampaign(full)
	if err != nil {
		t.Fatal(err)
	}
	// The resumed half must match the uninterrupted campaign's second
	// half bit-for-bit (the trajectory, dts included, is identical).
	wantDTs := append(append([]float64{}, first.DTs...), resumed.DTs...)
	for i, dt := range ref.DTs {
		if wantDTs[i] != dt {
			t.Errorf("segment %d dt: interrupted %v, uninterrupted %v", i, wantDTs[i], dt)
		}
	}
	for i, d := range resumed.Diags {
		if ref.Diags[i+2] != d {
			t.Errorf("segment %d diagnostics differ after resume:\nresumed %+v\nref     %+v", i+2, d, ref.Diags[i+2])
		}
	}
}

// TestResumeFallsBackPastInvalidNewest: resuming with a corrupt newest
// checkpoint falls back to the next-newest valid one.
func TestResumeFallsBackPastInvalidNewest(t *testing.T) {
	cfg := testConfig(t, 4, 2)
	if _, err := RunCampaign(cfg); err != nil {
		t.Fatal(err)
	}
	// Truncate the newest checkpoint (step 4) to simulate a crash
	// mid-write that somehow landed under the final name.
	newest := filepath.Join(cfg.Dir, ckptName(4))
	raw, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newest, raw[:len(raw)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	cfg.Steps = 6
	res, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resumed || res.StartStep != 2 {
		t.Errorf("Resumed=%v StartStep=%d, want fallback resume from step 2", res.Resumed, res.StartStep)
	}
	if res.FinalStep != 6 {
		t.Errorf("FinalStep = %d, want 6", res.FinalStep)
	}
}

// TestKilledRankRetries: a scripted rank kill mid-campaign fails one
// segment attempt; the retry (the kill is consumed) runs clean at full
// dt, so the campaign's committed trajectory is identical to a
// fault-free run.
func TestKilledRankRetries(t *testing.T) {
	cfg := testConfig(t, 4, 2)
	cfg.Faults = mpi.NewFaultPlan().Kill(1, 3)
	res, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries != 1 {
		t.Errorf("Retries = %d, want 1 (the killed segment)", res.Retries)
	}
	ref, err := RunCampaign(testConfig(t, 4, 2))
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Diags {
		if res.Diags[i] != ref.Diags[i] {
			t.Errorf("segment %d diagnostics differ from fault-free run", i)
		}
	}
}

// TestDroppedMessageRetries: a dropped overset message trips the
// segment deadline with the blocked envelope named; the retry
// completes the campaign.
func TestDroppedMessageRetries(t *testing.T) {
	cfg := testConfig(t, 2, 2)
	// With one rank per panel the overset exchange is the only world
	// traffic: drop rank 1's first donation to rank 0.
	cfg.Faults = mpi.NewFaultPlan().Drop(1, 0, 100, 0)
	cfg.Deadline = 500 * time.Millisecond
	cfg.MaxRetries = 2
	res, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries < 1 {
		t.Errorf("Retries = %d, want at least 1 (the dropped message)", res.Retries)
	}
	if res.FinalStep != 2 {
		t.Errorf("FinalStep = %d, want 2", res.FinalStep)
	}
}

// TestPostmortemOnExhaustedRetries: a segment that blows up on every
// attempt exhausts the retry budget; the campaign aborts gracefully
// with a post-mortem saved next to the checkpoints.
func TestPostmortemOnExhaustedRetries(t *testing.T) {
	cfg := testConfig(t, 4, 2)
	cfg.MaxRetries = 2
	cfg.Perturb = func(seg, attempt int, sv *mhd.Solver) {
		if seg == 1 {
			data := sv.Panels[0].U.Rho.Data
			data[len(data)/2] = math.NaN()
		}
	}
	res, err := RunCampaign(cfg)
	if err == nil {
		t.Fatal("campaign completed despite a persistent blow-up")
	}
	for _, want := range []string{"failed after 3 attempts", "blow-up"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error missing %q: %v", want, err)
		}
	}
	if res.Retries != 2 {
		t.Errorf("Retries = %d, want 2", res.Retries)
	}
	pm, rerr := os.ReadFile(filepath.Join(cfg.Dir, postmortemName))
	if rerr != nil {
		t.Fatalf("post-mortem not written: %v", rerr)
	}
	for _, want := range []string{"failed segment start step: 2", "attempts: 3", "blow-up", "committed segments: 1",
		"recovery decisions (2):", "segment 1 attempt 1: rollback", "segment 1 attempt 2: rollback"} {
		if !strings.Contains(string(pm), want) {
			t.Errorf("post-mortem missing %q:\n%s", want, pm)
		}
	}
}

// TestCampaignValidatesConfig: missing directory or step count are
// rejected up front.
func TestCampaignValidatesConfig(t *testing.T) {
	if _, err := RunCampaign(Config{Steps: 4}); err == nil {
		t.Error("campaign without a directory did not fail")
	}
	if _, err := RunCampaign(Config{Dir: t.TempDir()}); err == nil {
		t.Error("campaign without steps did not fail")
	}
}
