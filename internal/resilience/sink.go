package resilience

// The checkpoint sink abstracts where a campaign's durable artifacts
// live: a plain run directory (the original substrate, dirSink) or a
// content-addressed store with a Merkle-chained ledger
// (internal/store, storeSink). The campaign loop speaks only to this
// interface, so recovery semantics — the newest-valid fallback ladder,
// rollback, rewind, rank-replacement reload — are identical over both;
// the store additionally dedups bit-identical checkpoints and appends
// one ledger manifest per commit so every recovery decision is
// verifiable offline.

import (
	"bytes"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/grid"
	"repro/internal/mhd"
	"repro/internal/mpi"
	"repro/internal/snapshot"
	"repro/internal/store"
)

// segMeta is the provenance a commit carries into the ledger (ignored
// by the plain directory sink).
type segMeta struct {
	// note labels the commit ("origin", "segment").
	note string
	// recoveries are the recovery decisions taken since the previous
	// commit, rendered.
	recoveries []string
	// events is the campaign event log at commit time; the sink
	// digests it.
	events *mpi.EventLog
}

// ckptSink is the storage substrate of one campaign.
type ckptSink interface {
	// sweep removes orphaned temp files left by a crashed writer and
	// returns their names.
	sweep() ([]string, error)
	// newest restores the newest checkpoint that reads back valid,
	// skipping corrupt ones (returned in skipped), exactly like
	// loadNewest. (nil, skipped, nil) means a fresh campaign.
	newest(spec grid.Spec) (sv *mhd.Solver, skipped []string, err error)
	// write durably commits a checkpoint of sv.
	write(sv *mhd.Solver, meta segMeta) error
	// segment loads the checkpoint committed at exactly the given
	// step, in layout-neutral form (the rank-replacement reload path).
	segment(step int) (*snapshot.Interior, error)
	// prune retires all but the newest keep checkpoints.
	prune(keep int) error
	// postmortem durably saves the failure account and returns a
	// human-readable location ("" if even that failed).
	postmortem(text string) string
	// artifacts durably saves auxiliary run artifacts (segment pprof
	// profiles, traces, run reports): loose files beside the
	// checkpoints for the directory sink, blobs pinned by one ledger
	// manifest for the store sink. An empty list is a no-op.
	artifacts(step int, note string, arts []runArtifact) error
}

// runArtifact is one auxiliary blob a campaign commits beside its
// checkpoints: a segment CPU/heap profile, a Chrome trace, a run
// report.
type runArtifact struct {
	// name is the artifact's file/ref name; role classifies it in the
	// ledger ("profile.cpu", "profile.heap", "trace", "report").
	name, role string
	data       []byte
}

// Artifact is one post-run artifact for CommitArtifacts.
type Artifact struct {
	// Name is the artifact's ref name inside the run's namespace; Role
	// classifies it in the ledger manifest ("trace", "report").
	Name, Role string
	Data       []byte
}

// CommitArtifacts pins post-run artifacts — the Chrome trace and the
// run report a driver renders after the campaign — into the campaign
// run's store ledger, so `yystore ls` shows them next to the
// checkpoints and gc keeps them reachable. An empty runID selects the
// default campaign namespace.
func CommitArtifacts(st *store.Store, runID string, step int, note string, arts []Artifact) error {
	if st == nil {
		return fmt.Errorf("resilience: CommitArtifacts needs a store")
	}
	if runID == "" {
		runID = "campaign"
	}
	s := &storeSink{st: st, run: runID}
	ra := make([]runArtifact, 0, len(arts))
	for _, a := range arts {
		ra = append(ra, runArtifact{name: a.Name, role: a.Role, data: a.Data})
	}
	return s.artifacts(step, note, ra)
}

// sink builds the campaign's storage substrate from its config.
func (c Config) sink() ckptSink {
	if c.Store != nil {
		run := c.RunID
		if run == "" {
			run = "campaign"
		}
		return &storeSink{st: c.Store, run: run}
	}
	return &dirSink{dir: c.Dir}
}

// dirSink is the loose-files substrate: checkpoints under
// Config.Dir/ckpt-*.yyck, postmortem.txt beside them.
type dirSink struct {
	dir string
}

func (d *dirSink) sweep() ([]string, error) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, err
	}
	var swept []string
	for _, e := range entries {
		if e.IsDir() || !strings.Contains(e.Name(), ".tmp-") {
			continue
		}
		if err := os.Remove(filepath.Join(d.dir, e.Name())); err != nil {
			return nil, fmt.Errorf("resilience: sweeping orphan temp %s: %w", e.Name(), err)
		}
		swept = append(swept, e.Name())
	}
	return swept, nil
}

func (d *dirSink) newest(spec grid.Spec) (*mhd.Solver, []string, error) {
	return loadNewest(d.dir, spec)
}

func (d *dirSink) write(sv *mhd.Solver, _ segMeta) error {
	_, err := writeCheckpointFile(d.dir, sv)
	if errors.Is(err, syscall.ENOSPC) {
		// Surface a full disk as the typed error so callers (and the
		// campaign's own abort path) can tell it apart from transient
		// faults that deserve the retry ladder.
		return &store.DiskFullError{Path: d.dir, Err: err}
	}
	return err
}

func (d *dirSink) segment(step int) (*snapshot.Interior, error) {
	path := filepath.Join(d.dir, ckptName(step))
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	in, err := snapshot.ReadInterior(f)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %s: %w", path, err)
	}
	return in, nil
}

func (d *dirSink) prune(keep int) error {
	return prune(d.dir, keep)
}

func (d *dirSink) postmortem(text string) string {
	path := filepath.Join(d.dir, postmortemName)
	if err := store.WriteFileAtomic(path, []byte(text), 0o644); err != nil {
		return ""
	}
	return path
}

func (d *dirSink) artifacts(_ int, _ string, arts []runArtifact) error {
	for _, a := range arts {
		if err := store.WriteFileAtomic(filepath.Join(d.dir, a.name), a.data, 0o644); err != nil {
			return fmt.Errorf("resilience: writing artifact %s: %w", a.name, err)
		}
	}
	return nil
}

// storeSink is the content-addressed substrate: checkpoint blobs in
// the store, mutable refs runs/<run>/ckpt-%09d pointing at them, and
// one Merkle-chained ledger entry per commit.
type storeSink struct {
	st  *store.Store
	run string
	// committed counts ledger entries this campaign appended (Note
	// context only; the chain itself lives in the store).
	committed int
}

func (s *storeSink) refName(step int) string {
	return fmt.Sprintf("runs/%s/ckpt-%09d", s.run, step)
}

// refStep parses the step out of a checkpoint ref name.
func (s *storeSink) refStep(name string) (int, bool) {
	i := strings.LastIndex(name, "/ckpt-")
	if i < 0 {
		return 0, false
	}
	step, err := strconv.Atoi(name[i+len("/ckpt-"):])
	if err != nil || step < 0 {
		return 0, false
	}
	return step, true
}

func (s *storeSink) sweep() ([]string, error) {
	return s.st.Sweep()
}

// ckptSteps lists the run's checkpoint steps ascending, from its refs.
func (s *storeSink) ckptSteps() ([]int, error) {
	refs, err := s.st.Refs("runs/" + s.run + "/")
	if err != nil {
		return nil, err
	}
	var steps []int
	for _, r := range refs {
		if step, ok := s.refStep(r.Name); ok {
			steps = append(steps, step)
		}
	}
	sort.Ints(steps)
	return steps, nil
}

func (s *storeSink) newest(spec grid.Spec) (*mhd.Solver, []string, error) {
	steps, err := s.ckptSteps()
	if err != nil {
		return nil, nil, err
	}
	var skipped []string
	// The same fallback ladder as loadNewest: a corrupt, missing or
	// undecodable newest checkpoint is skipped (the store's typed
	// errors land in skipped) and the scan falls back to the
	// next-newest; only a readable checkpoint with the wrong grid is a
	// hard error.
	for i := len(steps) - 1; i >= 0; i-- {
		name := s.refName(steps[i])
		sv, err := s.readCkpt(steps[i])
		if err != nil {
			skipped = append(skipped, fmt.Sprintf("%s: %v", name, err))
			continue
		}
		if sv.Spec != spec {
			return nil, skipped, fmt.Errorf("resilience: checkpoint %s holds grid %dx%dx%d, campaign wants %dx%dx%d — wrong run id or reconfigured resolution",
				name, sv.Spec.Nr, sv.Spec.Nt, sv.Spec.Np, spec.Nr, spec.Nt, spec.Np)
		}
		return sv, skipped, nil
	}
	return nil, skipped, nil
}

func (s *storeSink) readCkpt(step int) (*mhd.Solver, error) {
	h, err := s.st.Ref(s.refName(step))
	if err != nil {
		return nil, err
	}
	data, err := s.st.Get(h)
	if err != nil {
		return nil, err
	}
	return snapshot.ReadCheckpoint(bytes.NewReader(data))
}

func (s *storeSink) write(sv *mhd.Solver, meta segMeta) error {
	var buf bytes.Buffer
	if err := snapshot.WriteCheckpoint(&buf, sv); err != nil {
		return fmt.Errorf("resilience: encoding checkpoint: %w", err)
	}
	data := buf.Bytes()
	h, err := s.st.Put(data)
	if err != nil {
		return err
	}
	name := fmt.Sprintf("ckpt-%09d", sv.Step)
	if err := s.st.SetRef(s.refName(sv.Step), h); err != nil {
		return err
	}
	m := store.Manifest{
		Run:  s.run,
		Step: sv.Step,
		Note: meta.note,
		Artifacts: []store.Artifact{
			{Name: name, Role: "checkpoint", Hash: h, Size: int64(len(data))},
		},
		Recoveries: meta.recoveries,
	}
	if meta.events != nil {
		m.EventDigest = digestEvents(meta.events)
	}
	if _, err := s.st.Append(m); err != nil {
		return err
	}
	s.committed++
	return nil
}

func (s *storeSink) segment(step int) (*snapshot.Interior, error) {
	h, err := s.st.Ref(s.refName(step))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("resilience: no checkpoint ref at step %d: %w", step, err)
		}
		return nil, err
	}
	data, err := s.st.Get(h)
	if err != nil {
		return nil, err
	}
	in, err := snapshot.ReadInterior(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("snapshot: %s: %w", s.refName(step), err)
	}
	return in, nil
}

// prune deletes all but the newest keep checkpoint *refs*. The blobs
// stay — possibly shared with other runs — until a gc sweep finds them
// unreachable from every ref and ledger entry.
func (s *storeSink) prune(keep int) error {
	steps, err := s.ckptSteps()
	if err != nil {
		return err
	}
	for len(steps) > keep {
		if err := s.st.DelRef(s.refName(steps[0])); err != nil {
			return err
		}
		steps = steps[1:]
	}
	return nil
}

func (s *storeSink) postmortem(text string) string {
	h, err := s.st.Put([]byte(text))
	if err != nil {
		return ""
	}
	ref := "runs/" + s.run + "/postmortem"
	if err := s.st.SetRef(ref, h); err != nil {
		return ""
	}
	// The failure account is itself ledger-pinned: an aborted campaign
	// leaves a verifiable record of why.
	if _, err := s.st.Append(store.Manifest{
		Run: s.run, Note: "postmortem",
		Artifacts: []store.Artifact{{Name: "postmortem", Role: "postmortem", Hash: h, Size: int64(len(text))}},
	}); err != nil {
		return ""
	}
	return "store:" + ref
}

// artifacts puts every blob, points a run-namespaced ref at each (so
// `yystore ls` shows them and gc marks them live), and pins the whole
// batch with one ledger manifest.
func (s *storeSink) artifacts(step int, note string, arts []runArtifact) error {
	if len(arts) == 0 {
		return nil
	}
	m := store.Manifest{Run: s.run, Step: step, Note: note}
	for _, a := range arts {
		h, err := s.st.Put(a.data)
		if err != nil {
			return err
		}
		if err := s.st.SetRef("runs/"+s.run+"/"+a.name, h); err != nil {
			return err
		}
		m.Artifacts = append(m.Artifacts, store.Artifact{
			Name: a.name, Role: a.role, Hash: h, Size: int64(len(a.data)),
		})
	}
	if _, err := s.st.Append(m); err != nil {
		return err
	}
	return nil
}

// digestEvents hashes the rendered event timeline, so the ledger pins
// which fault history led to each commit without storing the log.
func digestEvents(events *mpi.EventLog) store.Hash {
	var b strings.Builder
	for _, e := range events.Events() {
		fmt.Fprintf(&b, "%s\n", e)
	}
	return store.HashOf([]byte(b.String()))
}
