package resilience

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/snapshot"
	"repro/internal/store"
)

func testStore(t *testing.T) (*store.Store, *store.DirBackend) {
	t.Helper()
	b, err := store.NewDirBackend(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatalf("NewDirBackend: %v", err)
	}
	s, err := store.Open(b)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s, b
}

func storeConfig(t *testing.T, steps, every int) (Config, *store.Store, *store.DirBackend) {
	t.Helper()
	cfg := testConfig(t, steps, every)
	cfg.Dir = ""
	st, b := testStore(t)
	cfg.Store = st
	cfg.RunID = "test"
	return cfg, st, b
}

func ckptBytes(t *testing.T, res *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := snapshot.WriteCheckpoint(&buf, res.Final); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	return buf.Bytes()
}

// TestCampaignThroughStore: a campaign over the content-addressed
// store commits the same trajectory as the loose-file substrate —
// byte-identical final state — and leaves a clean, Merkle-chained
// ledger behind: one entry per commit, recovery decisions recorded,
// refs pruned to Keep.
func TestCampaignThroughStore(t *testing.T) {
	dirCfg := testConfig(t, 6, 2)
	want, err := RunCampaign(dirCfg)
	if err != nil {
		t.Fatalf("dir campaign: %v", err)
	}

	cfg, st, _ := storeConfig(t, 6, 2)
	cfg.DTSchedule = want.DTs // same trajectory, bit for bit
	res, err := RunCampaign(cfg)
	if err != nil {
		t.Fatalf("store campaign: %v", err)
	}
	if res.FinalStep != 6 || res.Retries != 0 {
		t.Fatalf("FinalStep=%d Retries=%d", res.FinalStep, res.Retries)
	}
	if !bytes.Equal(ckptBytes(t, res), ckptBytes(t, want)) {
		t.Fatal("store-substrate campaign final state differs from dir-substrate golden")
	}

	// Ledger: origin + 3 segment commits, chained.
	entries, err := st.Entries()
	if err != nil {
		t.Fatalf("Entries: %v", err)
	}
	if len(entries) != 4 {
		t.Fatalf("ledger holds %d entries, want 4 (origin + 3 segments)", len(entries))
	}
	if entries[0].Note != "origin" || entries[0].Step != 0 {
		t.Fatalf("first entry = %+v, want origin at step 0", entries[0])
	}
	for i, m := range entries {
		if m.Run != "test" {
			t.Fatalf("entry %d run %q", i, m.Run)
		}
		if len(m.Artifacts) != 1 || m.Artifacts[0].Role != "checkpoint" {
			t.Fatalf("entry %d artifacts %+v", i, m.Artifacts)
		}
		if m.EventDigest.IsZero() {
			t.Fatalf("entry %d has no event digest", i)
		}
	}
	if entries[3].Step != 6 {
		t.Fatalf("last entry step %d, want 6", entries[3].Step)
	}

	// Refs pruned to Keep (2): steps 4 and 6 survive.
	refs, err := st.Refs("runs/test/")
	if err != nil {
		t.Fatalf("Refs: %v", err)
	}
	var names []string
	for _, r := range refs {
		names = append(names, r.Name)
	}
	if len(refs) != 2 || !strings.HasSuffix(refs[0].Name, "ckpt-000000004") || !strings.HasSuffix(refs[1].Name, "ckpt-000000006") {
		t.Fatalf("refs after prune = %v, want ckpt-4 and ckpt-6", names)
	}

	// The whole history verifies: pruned blobs are still ledger-pinned,
	// so the only acceptable findings are... none, because dedup means
	// every pinned blob is still present until GC.
	rep, err := st.Verify()
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if rep.Severe() != 0 {
		t.Fatalf("store damaged after campaign:\n%s", rep)
	}
}

// TestCampaignDedupAcrossReruns is the dedup acceptance criterion: N
// bit-identical reruns of the same campaign into one store add zero
// new checkpoint blobs after the first — only refs and ledger entries
// grow.
func TestCampaignDedupAcrossReruns(t *testing.T) {
	cfg, st, _ := storeConfig(t, 4, 2)
	cfg.RunID = "run-0"
	first, err := RunCampaign(cfg)
	if err != nil {
		t.Fatalf("run-0: %v", err)
	}
	objectsAfterFirst := st.Objects()
	_, entriesAfterFirst := st.Head()

	for i := 1; i <= 2; i++ {
		cfg.RunID = fmt.Sprintf("run-%d", i)
		cfg.DTSchedule = first.DTs // pin the trajectory: reruns are bit-identical by design
		res, err := RunCampaign(cfg)
		if err != nil {
			t.Fatalf("run-%d: %v", i, err)
		}
		if !bytes.Equal(ckptBytes(t, res), ckptBytes(t, first)) {
			t.Fatalf("run-%d final state not bit-identical", i)
		}
	}

	if st.Objects() != objectsAfterFirst {
		t.Fatalf("reruns grew the object set: %d -> %d blobs; bit-identical checkpoints must dedup",
			objectsAfterFirst, st.Objects())
	}
	if _, n := st.Head(); n <= entriesAfterFirst {
		t.Fatalf("ledger did not record the reruns: %d entries", n)
	}
	// Three runs' refs point into the shared blob set.
	for i := 0; i <= 2; i++ {
		refs, err := st.Refs(fmt.Sprintf("runs/run-%d/", i))
		if err != nil || len(refs) == 0 {
			t.Fatalf("run-%d refs = %v, %v", i, refs, err)
		}
	}
	rep, err := st.Verify()
	if err != nil || rep.Severe() != 0 {
		t.Fatalf("shared store damaged (%v):\n%s", err, rep)
	}
}

// TestCampaignENOSPCTypedError is the ENOSPC satellite: a permanently
// full disk during a checkpoint write surfaces immediately as the
// typed *store.DiskFullError — no trips through the dt-backoff retry
// ladder, which exists for solver and runtime faults, not full disks.
func TestCampaignENOSPCTypedError(t *testing.T) {
	cfg, _, b := storeConfig(t, 4, 2)
	// Let the origin commit through, then the disk fills for good.
	b.SetFaults(store.NewFaultPlan([]store.Fault{{Op: -1, Kind: store.FaultENOSPC}}))
	_, err := RunCampaign(cfg)
	var full *store.DiskFullError
	if !errors.As(err, &full) {
		t.Fatalf("campaign error = %v, want *store.DiskFullError", err)
	}
}

// TestCampaignStoreCorruptNewestFallsBack: resuming through the store
// with a bit-rotted newest checkpoint falls back to the next-newest,
// exactly like the loose-file ladder.
func TestCampaignStoreCorruptNewestFallsBack(t *testing.T) {
	cfg, st, b := storeConfig(t, 4, 2)
	cfg.Keep = 3
	res, err := RunCampaign(cfg)
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	if res.FinalStep != 4 {
		t.Fatalf("FinalStep = %d", res.FinalStep)
	}
	// Rot the newest checkpoint's blob, then quarantine it via scrub
	// (Get would fail typed either way; scrub makes it a clean miss).
	newest, err := st.Ref("runs/test/ckpt-000000004")
	if err != nil {
		t.Fatalf("Ref: %v", err)
	}
	data, err := st.Get(newest)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	corruptStoredObject(t, b, newest, data)

	// Resume to more steps: the newest (step 4) no longer reads back,
	// so the campaign rewinds to step 2 and replays forward.
	cfg.Steps = 6
	cfg.DTSchedule = append(append([]float64{}, res.DTs...), res.DTs[len(res.DTs)-1])
	res2, err := RunCampaign(cfg)
	if err != nil {
		t.Fatalf("resume over corrupt newest: %v", err)
	}
	if !res2.Resumed || res2.StartStep != 2 {
		t.Fatalf("Resumed=%v StartStep=%d, want resume from step 2", res2.Resumed, res2.StartStep)
	}
	if res2.FinalStep != 6 {
		t.Fatalf("FinalStep = %d, want 6", res2.FinalStep)
	}
}

// corruptStoredObject flips a bit of a committed object in the
// store's backing directory, the way real bit rot would.
func corruptStoredObject(t *testing.T, b *store.DirBackend, h store.Hash, original []byte) {
	t.Helper()
	damaged := append([]byte{}, original...)
	damaged[len(damaged)/3] ^= 0x10
	hx := h.String()
	path := filepath.Join(b.Root(), "objects", hx[:2], hx)
	if err := store.WriteFileAtomic(path, damaged, 0o644); err != nil {
		t.Fatalf("corrupting object: %v", err)
	}
}

// TestCampaignSweepsOrphanTemps is the orphan-temp satellite: a crash
// between a checkpoint's temp write and its rename leaves a *.tmp file
// nothing would ever reclaim; the next campaign start sweeps it, in
// both substrates.
func TestCampaignSweepsOrphanTemps(t *testing.T) {
	t.Run("dir", func(t *testing.T) {
		cfg := testConfig(t, 2, 2)
		orphan := filepath.Join(cfg.Dir, ckptName(0)+".tmp-4242")
		if err := store.WriteFileAtomic(orphan, []byte("half-written checkpoint"), 0o644); err != nil {
			t.Fatalf("planting orphan: %v", err)
		}
		res, err := RunCampaign(cfg)
		if err != nil {
			t.Fatalf("campaign: %v", err)
		}
		if _, err := os.Stat(orphan); err == nil {
			t.Fatal("orphan temp survived the campaign start sweep")
		}
		if !eventsMention(res, "swept 1 orphan temp") {
			t.Fatalf("no sweep note in the event timeline: %v", res.Events)
		}
	})
	t.Run("store", func(t *testing.T) {
		cfg, _, b := storeConfig(t, 2, 2)
		// A torn write strands a real temp in the backend.
		b.SetFaults(store.NewFaultPlan([]store.Fault{{Op: 0, Kind: store.FaultTornWrite, Byte: 3}}))
		var full *store.CrashError
		if _, err := RunCampaign(cfg); !errors.As(err, &full) {
			t.Fatalf("torn origin write = %v, want *store.CrashError", err)
		}
		if temps, _ := b.Temps(); len(temps) != 1 {
			t.Fatalf("Temps = %v, want the stranded orphan", temps)
		}
		b.SetFaults(nil)
		res, err := RunCampaign(cfg)
		if err != nil {
			t.Fatalf("second campaign: %v", err)
		}
		if temps, _ := b.Temps(); len(temps) != 0 {
			t.Fatalf("orphan survived the sweep: %v", temps)
		}
		if !eventsMention(res, "swept 1 orphan temp") {
			t.Fatalf("no sweep note in the event timeline: %v", res.Events)
		}
	})
}

func eventsMention(res *Result, frag string) bool {
	for _, e := range res.Events {
		if strings.Contains(e.Detail, frag) {
			return true
		}
	}
	return false
}
