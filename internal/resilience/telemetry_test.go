package resilience

import (
	"bytes"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/mhd"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/telemetry"
)

// TestTelemetrizedCampaignIdentical is the plane's zero-perturbation
// gate: a 4-rank campaign watched by a served, scraped telemetry plane
// commits a final state byte-identical to the same campaign run dark.
func TestTelemetrizedCampaignIdentical(t *testing.T) {
	golden := testConfig(t, 6, 2)
	golden.NProcs = 4
	want, err := RunCampaign(golden)
	if err != nil {
		t.Fatalf("dark campaign: %v", err)
	}

	cfg := testConfig(t, 6, 2)
	cfg.NProcs = 4
	cfg.DTSchedule = want.DTs
	cfg.Obs = obs.New(obs.Config{})
	plane := telemetry.New(telemetry.Config{Interval: 10 * time.Millisecond})
	cfg.Telemetry = plane
	addr, err := plane.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer plane.Close()
	// Scrape aggressively while the campaign runs: reads must never
	// perturb the physics.
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				http.Get("http://" + addr + "/metrics") //nolint:errcheck
			}
		}
	}()
	res, err := RunCampaign(cfg)
	close(stop)
	if err != nil {
		t.Fatalf("telemetrized campaign: %v", err)
	}
	if !bytes.Equal(ckptBytes(t, res), ckptBytes(t, want)) {
		t.Fatal("telemetrized campaign final state differs from dark golden")
	}

	// The plane saw the run: progress counters landed and all four
	// ranks published.
	info := plane.Progress()
	if !info.Done || info.CommittedStep != 6 || info.TotalSteps != 6 {
		t.Fatalf("progress = %+v", info)
	}
	if len(info.Ranks) != 4 {
		t.Fatalf("%d rank rows, want 4", len(info.Ranks))
	}
	for _, r := range info.Ranks {
		if r.Step < 1 {
			t.Fatalf("rank %d never published: %+v", r.Rank, r)
		}
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "yy_progress_done 1") {
		t.Fatal("final scrape lacks yy_progress_done 1")
	}
}

// TestCampaignCommitsProfiles: with a plane attached, every committed
// segment's CPU+heap pprof blobs are pinned into the store ledger with
// typed roles, and the store still verifies clean end to end.
func TestCampaignCommitsProfiles(t *testing.T) {
	cfg, st, _ := storeConfig(t, 4, 2)
	cfg.Telemetry = telemetry.New(telemetry.Config{})
	if _, err := RunCampaign(cfg); err != nil {
		t.Fatal(err)
	}
	entries, err := st.Entries()
	if err != nil {
		t.Fatal(err)
	}
	roles := map[string]int{}
	for _, m := range entries {
		for _, a := range m.Artifacts {
			roles[a.Role]++
			if a.Size == 0 {
				t.Errorf("artifact %s (%s) committed empty", a.Name, a.Role)
			}
			if !st.Has(a.Hash) {
				t.Errorf("artifact %s hash not in store", a.Name)
			}
		}
	}
	// 2 segments committed: cpu + heap per segment (the CPU profiler
	// can be busy under parallel tests, so cpu may fall short of 2,
	// but heap snapshots are unconditional).
	if roles["profile.heap"] != 2 {
		t.Fatalf("roles = %v, want 2 profile.heap", roles)
	}
	if roles["checkpoint"] != 3 {
		t.Fatalf("roles = %v, want 3 checkpoints (origin + 2 segments)", roles)
	}
	rep, err := st.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("store not clean after profile commits:\n%+v", rep.Findings)
	}
	// GC must treat ledger-pinned profiles as live.
	gc, err := st.GC()
	if err != nil {
		t.Fatal(err)
	}
	if len(gc.Swept) > 0 {
		t.Fatalf("gc swept %d ledger-pinned objects", len(gc.Swept))
	}
	for _, m := range entries {
		for _, a := range m.Artifacts {
			if !st.Has(a.Hash) {
				t.Errorf("gc dropped %s (%s)", a.Name, a.Role)
			}
		}
	}
}

// TestCampaignNoProfileSwitch: Config.NoProfile turns the segment
// profiling off while the rest of the plane stays live.
func TestCampaignNoProfileSwitch(t *testing.T) {
	cfg, st, _ := storeConfig(t, 4, 2)
	cfg.Telemetry = telemetry.New(telemetry.Config{NoProfile: true})
	if _, err := RunCampaign(cfg); err != nil {
		t.Fatal(err)
	}
	entries, err := st.Entries()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range entries {
		for _, a := range m.Artifacts {
			if strings.HasPrefix(a.Role, "profile.") {
				t.Fatalf("NoProfile still committed %s", a.Name)
			}
		}
	}
	if got := cfg.Telemetry.Progress(); !got.Done || got.CommittedStep != 4 {
		t.Fatalf("plane progress = %+v", got)
	}
}

// TestCommitArtifacts pins caller-rendered post-run artifacts (trace,
// report) into the run ledger under their roles and refs.
func TestCommitArtifacts(t *testing.T) {
	st, _ := testStore(t)
	arts := []Artifact{
		{Name: "trace.json", Role: "trace", Data: []byte(`{"traceEvents":[]}`)},
		{Name: "report.txt", Role: "report", Data: []byte("Run Information\n")},
	}
	if err := CommitArtifacts(st, "", 6, "run-artifacts", arts); err != nil {
		t.Fatal(err)
	}
	entries, err := st.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || len(entries[0].Artifacts) != 2 {
		t.Fatalf("entries = %+v", entries)
	}
	if entries[0].Run != "campaign" || entries[0].Note != "run-artifacts" || entries[0].Step != 6 {
		t.Fatalf("manifest = %+v", entries[0])
	}
	for _, name := range []string{"trace.json", "report.txt"} {
		if _, err := st.Ref("runs/campaign/" + name); err != nil {
			t.Errorf("no ref for %s: %v", name, err)
		}
	}
	if err := CommitArtifacts(nil, "x", 0, "n", nil); err == nil {
		t.Fatal("nil store accepted")
	}
}

// TestCampaignAlertReachesPostmortem: a campaign that dies emits its
// latched alerts as telemetry.alert events, which the post-mortem's
// timeline then carries.
func TestCampaignAlertReachesPostmortem(t *testing.T) {
	cfg := testConfig(t, 4, 2)
	// Attempt 0 dies to a scripted kill (the rank-dead trigger); every
	// retry is perturbed into a blow-up, so the campaign aborts with a
	// post-mortem.
	cfg.Faults = mpi.NewFaultPlan().Kill(1, 1)
	cfg.Perturb = func(seg, attempt int, sv *mhd.Solver) {
		if attempt > 0 {
			data := sv.Panels[0].U.Rho.Data
			data[len(data)/2] = math.NaN()
		}
	}
	cfg.Telemetry = telemetry.New(telemetry.Config{})
	events := mpi.NewEventLog()
	cfg.Events = events
	_, err := RunCampaign(cfg)
	if err == nil {
		t.Fatal("campaign survived its scripted kill")
	}
	alerts := cfg.Telemetry.Alerts()
	var found bool
	for _, a := range alerts {
		if a.Rule == telemetry.RuleRankDead {
			found = true
		}
	}
	if !found {
		t.Fatalf("no %s alert latched; alerts = %v", telemetry.RuleRankDead, alerts)
	}
	var inLog bool
	for _, ev := range events.Events() {
		if ev.Kind == "telemetry.alert" && strings.Contains(ev.Detail, telemetry.RuleRankDead) {
			inLog = true
		}
	}
	if !inLog {
		t.Fatal("telemetry.alert event missing from the campaign timeline")
	}
}
