package snapshot

import (
	"fmt"
	"io"

	"repro/internal/grid"
	"repro/internal/mhd"
)

// Interior is the layout-neutral content of a v2 checkpoint: the grid
// spec, the physical parameters, the clock, and each panel's eight
// state scalars as interior-only slabs — no halos, no decomposition
// imprint. A checkpoint written by a world of any shape deserializes to
// the same Interior, which any other world shape can then scatter
// against its own layout (decomp.ScatterInterior); that is what makes
// campaign restarts elastic.
type Interior struct {
	Spec grid.Spec
	Prm  mhd.Params
	Time float64
	Step int
	// Fields[panel][s] holds scalar s of the panel in the on-disk
	// payload order: radial rows of Spec.Nr values, theta-major within
	// a phi slice (row (j, k) begins at ((k*Spec.Nt)+j)*Spec.Nr).
	Fields [2][8][]float64
}

// InteriorOf copies a solver's interior state into the layout-neutral
// form, exactly as WriteCheckpoint would serialize it.
func InteriorOf(sv *mhd.Solver) *Interior {
	in := &Interior{Spec: sv.Spec, Prm: sv.Prm, Time: sv.Time, Step: sv.Step}
	for pi, pl := range sv.Panels {
		for si, s := range pl.U.Scalars() {
			slab := make([]float64, sv.Spec.Nr*sv.Spec.Nt*sv.Spec.Np)
			pos := 0
			s.EachInteriorRow(func(_ int, row []float64) {
				copy(slab[pos:pos+len(row)], row)
				pos += len(row)
			})
			in.Fields[pi][si] = slab
		}
	}
	return in
}

// Solver rebuilds a serial solver from the interior state: halos, rims
// and walls are re-established by a constraint application, so the
// result is bit-identical to the solver the checkpoint was written
// from.
func (in *Interior) Solver() (*mhd.Solver, error) {
	sv, err := mhd.NewSolver(in.Spec, in.Prm, mhd.InitialConditions{})
	if err != nil {
		return nil, fmt.Errorf("snapshot: rebuilding solver: %w", err)
	}
	for pi, pl := range sv.Panels {
		for si, s := range pl.U.Scalars() {
			slab := in.Fields[pi][si]
			if len(slab) != in.Spec.Nr*in.Spec.Nt*in.Spec.Np {
				return nil, fmt.Errorf("snapshot: interior slab of %d values for %dx%dx%d grid",
					len(slab), in.Spec.Nr, in.Spec.Nt, in.Spec.Np)
			}
			pos := 0
			s.EachInteriorRow(func(_ int, row []float64) {
				copy(row, slab[pos:pos+len(row)])
				pos += len(row)
			})
		}
	}
	sv.Time = in.Time
	sv.Step = in.Step
	sv.ApplyConstraints()
	return sv, nil
}

// Row returns the interior radial row (j, k) of the given panel and
// scalar (all indices 0-based interior coordinates).
func (in *Interior) Row(panel, scalar, j, k int) []float64 {
	off := ((k * in.Spec.Nt) + j) * in.Spec.Nr
	return in.Fields[panel][scalar][off : off+in.Spec.Nr]
}

// ReadInterior deserializes a checkpoint into its layout-neutral form,
// verifying the header bounds and the trailing checksum exactly as
// ReadCheckpoint does — but without building a solver, so the caller
// can scatter the payload against any world layout.
func ReadInterior(r io.Reader) (*Interior, error) {
	// No read-ahead buffering here: every read below requests exact byte
	// counts, so the hashed prefix ends exactly where the trailing
	// checksum begins — and the counter can name the offset of any
	// decode failure.
	cr := &countingReader{r: r}
	crc, br, h, err := readHeader(cr)
	if err != nil {
		return nil, fmt.Errorf("%w (at byte offset %d)", err, cr.n)
	}
	in := &Interior{
		Spec: grid.Spec{Nr: int(h.Nr), Nt: int(h.Nt), Np: int(h.Np), RI: h.RI, RO: h.RO},
		Prm: mhd.Params{Gamma: h.Gamma, Mu: h.Mu, Kappa: h.Kappa, Eta: h.Eta,
			G0: h.G0, Omega: h.Omega, TIn: h.Ti, MagBC: mhd.MagneticBC(h.MagBC)},
		Time: h.Time,
		Step: int(h.Step),
	}
	slabLen := in.Spec.Nr * in.Spec.Nt * in.Spec.Np
	for pi := range in.Fields {
		for si := range in.Fields[pi] {
			slab := make([]float64, slabLen)
			if err := readFloats(br, slab); err != nil {
				return nil, fmt.Errorf("snapshot: reading field (panel %d, scalar %d) at byte offset %d: %w",
					pi, si, cr.n, err)
			}
			in.Fields[pi][si] = slab
		}
	}
	// Everything consumed through the tee has been hashed; the stored
	// checksum itself arrives from the counted raw reader.
	if err := verifyChecksum(cr, crc, cr.n); err != nil {
		return nil, err
	}
	return in, nil
}
