package snapshot

import (
	"bytes"
	"crypto/sha256"
	"testing"
)

// ckptSHA is the byte-identity gate the elastic-restart tests pin: two
// solvers are the same state iff their checkpoints hash the same.
func ckptSHA(t *testing.T, write func(*bytes.Buffer) error) [32]byte {
	t.Helper()
	var buf bytes.Buffer
	if err := write(&buf); err != nil {
		t.Fatal(err)
	}
	return sha256.Sum256(buf.Bytes())
}

// TestInteriorRoundTrip: checkpoint -> ReadInterior -> Solver ->
// checkpoint is byte-identical, so the layout-neutral form loses
// nothing relative to the direct ReadCheckpoint path.
func TestInteriorRoundTrip(t *testing.T) {
	sv := makeSolver(t, 3)
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, sv); err != nil {
		t.Fatal(err)
	}
	raw := append([]byte(nil), buf.Bytes()...)
	in, err := ReadInterior(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if in.Spec != sv.Spec || in.Prm != sv.Prm || in.Time != sv.Time || in.Step != sv.Step {
		t.Fatalf("interior metadata %+v t=%v step=%d does not match solver", in.Spec, in.Time, in.Step)
	}
	got, err := in.Solver()
	if err != nil {
		t.Fatal(err)
	}
	sum := ckptSHA(t, func(b *bytes.Buffer) error { return WriteCheckpoint(b, got) })
	if sum != sha256.Sum256(raw) {
		t.Fatal("checkpoint of the rebuilt solver differs from the original")
	}
}

// TestInteriorOfMatchesDisk: the in-memory InteriorOf and the on-disk
// ReadInterior produce identical slabs — the scatter path may take
// either without changing a bit.
func TestInteriorOfMatchesDisk(t *testing.T) {
	sv := makeSolver(t, 2)
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, sv); err != nil {
		t.Fatal(err)
	}
	fromDisk, err := ReadInterior(&buf)
	if err != nil {
		t.Fatal(err)
	}
	fromMem := InteriorOf(sv)
	for pi := range fromMem.Fields {
		for si := range fromMem.Fields[pi] {
			a, b := fromMem.Fields[pi][si], fromDisk.Fields[pi][si]
			if len(a) != len(b) {
				t.Fatalf("panel %d scalar %d: slab lengths %d vs %d", pi, si, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("panel %d scalar %d differs at %d", pi, si, i)
				}
			}
		}
	}
}

// TestInteriorRowIndexing: Row addresses the same values the solver
// holds at the corresponding interior node.
func TestInteriorRowIndexing(t *testing.T) {
	sv := makeSolver(t, 1)
	in := InteriorOf(sv)
	h := sv.Panels[0].Patch.H
	for pi, pl := range sv.Panels {
		for si, s := range pl.U.Scalars() {
			for _, jk := range [][2]int{{0, 0}, {1, 2}, {sv.Spec.Nt - 1, sv.Spec.Np - 1}} {
				row := in.Row(pi, si, jk[0], jk[1])
				want := s.Row(jk[0]+h, jk[1]+h)
				for i := 0; i < sv.Spec.Nr; i++ {
					if row[i] != want[i+h] {
						t.Fatalf("panel %d scalar %d row (%d,%d) differs at %d", pi, si, jk[0], jk[1], i)
					}
				}
			}
		}
	}
}

// TestInteriorCorruptionDetected: ReadInterior enforces the same
// trailing checksum as ReadCheckpoint.
func TestInteriorCorruptionDetected(t *testing.T) {
	sv := makeSolver(t, 1)
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, sv); err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), buf.Bytes()...)
	bad[len(bad)/2] ^= 0x40
	if _, err := ReadInterior(bytes.NewReader(bad)); err == nil {
		t.Fatal("bit flip in payload went undetected")
	}
}
