// Package snapshot implements the run's persistent data products, the
// paper's section-V pipeline: binary checkpoints of the full state (for
// exact restart) and visualization exports of the Cartesian-component
// fields B, v, omega and T — the paper saved 127 such snapshots, about
// 500 GB, during one six-hour run.
//
// The checkpoint format is a self-describing little-endian binary
// container: a magic header, the grid spec and physical parameters, then
// the eight state scalars of each panel including halos, and a trailing
// CRC-32. Restarting from a checkpoint is bit-exact (tested).
package snapshot

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"os"

	"repro/internal/coords"
	"repro/internal/grid"
	"repro/internal/mhd"
	"repro/internal/sphops"
)

// Magic identifies checkpoint files; the version gates format changes.
const (
	Magic   = "YYGO"
	Version = 2
)

// header is the fixed-size preamble of a checkpoint.
type header struct {
	Version            uint32
	Nr, Nt, Np         int32
	RI, RO             float64
	Gamma, Mu, Kappa   float64
	Eta, G0, Omega, Ti float64
	MagBC              int32
	Pad                int32 // keep 8-byte alignment explicit
	Time               float64
	Step               int64
}

// WriteCheckpoint serializes the solver state (both panels, halos
// included) so that ReadCheckpoint restores it bit-exactly.
func WriteCheckpoint(w io.Writer, sv *mhd.Solver) error {
	crc := crc32.NewIEEE()
	mw := io.MultiWriter(w, crc)
	bw := bufio.NewWriterSize(mw, 1<<16)

	if _, err := bw.WriteString(Magic); err != nil {
		return err
	}
	h := header{
		Version: Version,
		Nr:      int32(sv.Spec.Nr), Nt: int32(sv.Spec.Nt), Np: int32(sv.Spec.Np),
		RI: sv.Spec.RI, RO: sv.Spec.RO,
		Gamma: sv.Prm.Gamma, Mu: sv.Prm.Mu, Kappa: sv.Prm.Kappa,
		Eta: sv.Prm.Eta, G0: sv.Prm.G0, Omega: sv.Prm.Omega, Ti: sv.Prm.TIn,
		MagBC: int32(sv.Prm.MagBC),
		Time:  sv.Time,
		Step:  int64(sv.Step),
	}
	if err := binary.Write(bw, binary.LittleEndian, &h); err != nil {
		return err
	}
	for _, pl := range sv.Panels {
		for _, s := range pl.U.Scalars() {
			var werr error
			s.EachInteriorRow(func(i0 int, row []float64) {
				if werr == nil {
					werr = writeFloats(bw, row)
				}
			})
			if werr != nil {
				return werr
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	// Trailing checksum over everything written so far.
	return binary.Write(w, binary.LittleEndian, crc.Sum32())
}

// countingReader tracks how many bytes have been consumed, so decode
// and checksum failures can name the byte offset of the damage instead
// of forcing a manual hexdump hunt.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// readHeader consumes and validates a checkpoint's magic and header
// through a CRC tee; the returned hash and tee reader continue the
// checksummed payload read.
func readHeader(r io.Reader) (hash.Hash32, io.Reader, header, error) {
	crc := crc32.NewIEEE()
	br := io.TeeReader(r, crc)
	var h header

	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, nil, h, fmt.Errorf("snapshot: reading magic: %w", err)
	}
	if string(magic) != Magic {
		return nil, nil, h, fmt.Errorf("snapshot: bad magic %q", magic)
	}
	if err := binary.Read(br, binary.LittleEndian, &h); err != nil {
		return nil, nil, h, fmt.Errorf("snapshot: reading header: %w", err)
	}
	if h.Version != Version {
		return nil, nil, h, fmt.Errorf("snapshot: unsupported version %d", h.Version)
	}
	// Sanity-bound the header before allocating anything from it: a
	// corrupt (truncated, bit-flipped) file would otherwise request
	// absurd grid allocations or build a nonsense solver long before the
	// trailing checksum could reject it.
	const maxNodes = 1 << 14
	if h.Nr < 3 || h.Nt < 3 || h.Np < 3 || h.Nr > maxNodes || h.Nt > maxNodes || h.Np > 3*maxNodes {
		return nil, nil, h, fmt.Errorf("snapshot: implausible grid %dx%dx%d in header", h.Nr, h.Nt, h.Np)
	}
	if !(h.RI > 0 && h.RO > h.RI) || math.IsNaN(h.RI) || math.IsNaN(h.RO) || math.IsInf(h.RO, 0) {
		return nil, nil, h, fmt.Errorf("snapshot: implausible shell radii [%g, %g] in header", h.RI, h.RO)
	}
	if h.Step < 0 || h.Step > 1<<40 || math.IsNaN(h.Time) || math.IsInf(h.Time, 0) {
		return nil, nil, h, fmt.Errorf("snapshot: implausible clock t=%g step=%d in header", h.Time, h.Step)
	}
	return crc, br, h, nil
}

// verifyChecksum reads the stored trailing CRC-32 from the raw
// (un-teed) reader and compares it against the hash of everything
// consumed so far; payloadEnd is the byte offset where the hashed
// payload stopped (and the stored checksum begins).
func verifyChecksum(r io.Reader, crc hash.Hash32, payloadEnd int64) error {
	sum := crc.Sum32()
	var stored uint32
	if err := binary.Read(r, binary.LittleEndian, &stored); err != nil {
		return fmt.Errorf("snapshot: reading checksum at byte offset %d: %w", payloadEnd, err)
	}
	if stored != sum {
		return fmt.Errorf("snapshot: checksum mismatch over bytes 0..%d: stored %08x at offset %d, computed %08x",
			payloadEnd-1, stored, payloadEnd, sum)
	}
	return nil
}

// ReadCheckpoint reconstructs a solver from a checkpoint. The restored
// solver carries the stored parameters and the interior state; the
// constraint application (walls + overset exchange) is re-run to
// rebuild the padded halo values the payload does not carry.
func ReadCheckpoint(r io.Reader) (*mhd.Solver, error) {
	in, err := ReadInterior(r)
	if err != nil {
		return nil, err
	}
	return in.Solver()
}

// ReadCheckpointFile reads a checkpoint from disk, prefixing every
// failure with the file path so a corrupt checkpoint names both the
// file and (via the decode errors) the byte offset of the damage.
func ReadCheckpointFile(path string) (*mhd.Solver, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sv, err := ReadCheckpoint(f)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %s: %w", path, err)
	}
	return sv, nil
}

func writeFloats(w io.Writer, data []float64) error {
	buf := make([]byte, 8*4096)
	for len(data) > 0 {
		n := len(data)
		if n > 4096 {
			n = 4096
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(data[i]))
		}
		if _, err := w.Write(buf[:8*n]); err != nil {
			return err
		}
		data = data[n:]
	}
	return nil
}

func readFloats(r io.Reader, data []float64) error {
	buf := make([]byte, 8*4096)
	for len(data) > 0 {
		n := len(data)
		if n > 4096 {
			n = 4096
		}
		if _, err := io.ReadFull(r, buf[:8*n]); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
		}
		data = data[n:]
	}
	return nil
}

// VizExport is the visualization product of section V: the Cartesian
// components of B, v and omega plus T, in single precision, on the panel
// node set with optional angular subsampling.
type VizExport struct {
	Spec      grid.Spec
	Subsample int // keep every Subsample-th angular node (1 = all)
	Time      float64
	// Fields[panel][f] with f indexing Bx,By,Bz,Vx,Vy,Vz,Wx,Wy,Wz,T;
	// each slice is radial-fastest over the kept nodes.
	Fields [2][10][]float32
	// KeptNt, KeptNp are the angular node counts after subsampling.
	KeptNt, KeptNp int
}

// FieldNames lists the export field order.
func FieldNames() [10]string {
	return [10]string{"Bx", "By", "Bz", "Vx", "Vy", "Vz", "Wx", "Wy", "Wz", "T"}
}

// BuildVizExport converts the solver's state into the section-V product.
// The spherical components of v, B and the derived vorticity are rotated
// into geographic Cartesian components exactly as the paper stored them
// ("it is convenient for data visualization/analysis purpose to store
// the Cartesian components").
func BuildVizExport(sv *mhd.Solver, subsample int) (*VizExport, error) {
	if subsample < 1 {
		return nil, fmt.Errorf("snapshot: subsample must be >= 1, got %d", subsample)
	}
	ex := &VizExport{Spec: sv.Spec, Subsample: subsample, Time: sv.Time}
	for pi, pl := range sv.Panels {
		mhd.ComputeVTB(pl, &pl.U)
		p := pl.Patch
		h := p.H
		vort := p.NewVector()
		sphops.Curl(p, pl.V, vort, pl.W)

		keptJ := keepIndices(p.Nt, subsample)
		keptK := keepIndices(p.Np, subsample)
		ex.KeptNt, ex.KeptNp = len(keptJ), len(keptK)
		n := sv.Spec.Nr * len(keptJ) * len(keptK)
		for f := range ex.Fields[pi] {
			ex.Fields[pi][f] = make([]float32, 0, n)
		}
		for _, k := range keptK {
			for _, j := range keptJ {
				th, ph := p.Theta[j+h], p.Phi[k+h]
				for i := h; i < h+p.Nr; i++ {
					b := toGeoCart(p.Panel, th, ph, pl.B.R.At(i, j+h, k+h), pl.B.T.At(i, j+h, k+h), pl.B.P.At(i, j+h, k+h))
					v := toGeoCart(p.Panel, th, ph, pl.V.R.At(i, j+h, k+h), pl.V.T.At(i, j+h, k+h), pl.V.P.At(i, j+h, k+h))
					w := toGeoCart(p.Panel, th, ph, vort.R.At(i, j+h, k+h), vort.T.At(i, j+h, k+h), vort.P.At(i, j+h, k+h))
					ex.Fields[pi][0] = append(ex.Fields[pi][0], float32(b.X))
					ex.Fields[pi][1] = append(ex.Fields[pi][1], float32(b.Y))
					ex.Fields[pi][2] = append(ex.Fields[pi][2], float32(b.Z))
					ex.Fields[pi][3] = append(ex.Fields[pi][3], float32(v.X))
					ex.Fields[pi][4] = append(ex.Fields[pi][4], float32(v.Y))
					ex.Fields[pi][5] = append(ex.Fields[pi][5], float32(v.Z))
					ex.Fields[pi][6] = append(ex.Fields[pi][6], float32(w.X))
					ex.Fields[pi][7] = append(ex.Fields[pi][7], float32(w.Y))
					ex.Fields[pi][8] = append(ex.Fields[pi][8], float32(w.Z))
					ex.Fields[pi][9] = append(ex.Fields[pi][9], float32(pl.T.At(i, j+h, k+h)))
				}
			}
		}
	}
	return ex, nil
}

func keepIndices(n, sub int) []int {
	var out []int
	for i := 0; i < n; i += sub {
		out = append(out, i)
	}
	return out
}

func toGeoCart(panel grid.Panel, th, ph, vr, vt, vp float64) coords.Cartesian {
	c := coords.SphToCartVec(th, ph, coords.SphVec{VR: vr, VT: vt, VP: vp})
	if panel == grid.Yang {
		c = coords.YinYang(c)
	}
	return c
}

// Bytes returns the export's payload size, the quantity the paper's
// "about 500 GB" refers to across 127 saves.
func (ex *VizExport) Bytes() int64 {
	var n int64
	for pi := range ex.Fields {
		for f := range ex.Fields[pi] {
			n += int64(4 * len(ex.Fields[pi][f]))
		}
	}
	return n
}

// WriteVizExport streams the export as a simple binary container:
// magic "YYVZ", spec ints, subsample, time, then each panel's ten field
// arrays in FieldNames order.
func WriteVizExport(w io.Writer, ex *VizExport) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString("YYVZ"); err != nil {
		return err
	}
	meta := []int32{int32(ex.Spec.Nr), int32(ex.Spec.Nt), int32(ex.Spec.Np),
		int32(ex.Subsample), int32(ex.KeptNt), int32(ex.KeptNp)}
	if err := binary.Write(bw, binary.LittleEndian, meta); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, ex.Time); err != nil {
		return err
	}
	for pi := range ex.Fields {
		for f := range ex.Fields[pi] {
			if err := binary.Write(bw, binary.LittleEndian, ex.Fields[pi][f]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
