package snapshot

import (
	"bytes"
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/grid"
	"repro/internal/mhd"
)

func makeSolver(t *testing.T, steps int) *mhd.Solver {
	t.Helper()
	sv, err := mhd.NewSolver(grid.NewSpec(9, 13), mhd.Default(), mhd.DefaultIC())
	if err != nil {
		t.Fatal(err)
	}
	dt := sv.EstimateDT(0.3)
	for n := 0; n < steps; n++ {
		sv.Advance(dt)
	}
	return sv
}

// TestCheckpointRoundTrip: write/read restores every state value (halos
// included), the clock, and the parameters, bit for bit.
func TestCheckpointRoundTrip(t *testing.T) {
	sv := makeSolver(t, 3)
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, sv); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Time != sv.Time || got.Step != sv.Step {
		t.Errorf("clock: %v/%d vs %v/%d", got.Time, got.Step, sv.Time, sv.Step)
	}
	if got.Prm != sv.Prm {
		t.Errorf("params: %+v vs %+v", got.Prm, sv.Prm)
	}
	if got.Spec != sv.Spec {
		t.Errorf("spec: %+v vs %+v", got.Spec, sv.Spec)
	}
	// Interior equality: the payload carries only interior nodes; the
	// restored halos are rebuilt by the constraint application.
	for pi := range sv.Panels {
		a := sv.Panels[pi].U.Scalars()
		b := got.Panels[pi].U.Scalars()
		for vi := range a {
			bs := b[vi]
			a[vi].EachInteriorRow(func(i0 int, row []float64) {
				for off := range row {
					if row[off] != bs.Data[i0+off] {
						t.Fatalf("panel %d var %d differs at %d", pi, vi, i0+off)
					}
				}
			})
		}
	}
}

// TestRestartContinuesExactly: advancing the original and the restored
// solver produces identical states — restart is invisible.
func TestRestartContinuesExactly(t *testing.T) {
	sv := makeSolver(t, 2)
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, sv); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	const dt = 1.5e-3
	for n := 0; n < 3; n++ {
		sv.Advance(dt)
		restored.Advance(dt)
	}
	for pi := range sv.Panels {
		a := sv.Panels[pi].U.Scalars()
		b := restored.Panels[pi].U.Scalars()
		for vi := range a {
			bs := b[vi]
			a[vi].EachInteriorRow(func(i0 int, row []float64) {
				for off := range row {
					if row[off] != bs.Data[i0+off] {
						t.Fatalf("restart diverged: panel %d var %d index %d", pi, vi, i0+off)
					}
				}
			})
		}
	}
}

// TestCorruptionDetected: flipping any byte fails the checksum (or the
// header validation).
func TestCorruptionDetected(t *testing.T) {
	sv := makeSolver(t, 1)
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, sv); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, pos := range []int{2, 40, len(raw) / 2, len(raw) - 6} {
		bad := append([]byte(nil), raw...)
		bad[pos] ^= 0x40
		if _, err := ReadCheckpoint(bytes.NewReader(bad)); err == nil {
			t.Errorf("corruption at byte %d not detected", pos)
		}
	}
}

func TestTruncationDetected(t *testing.T) {
	sv := makeSolver(t, 1)
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, sv); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := ReadCheckpoint(bytes.NewReader(raw[:len(raw)/3])); err == nil {
		t.Error("truncated checkpoint accepted")
	}
	if _, err := ReadCheckpoint(bytes.NewReader([]byte("NOPE"))); err == nil {
		t.Error("garbage accepted")
	}
}

// TestVizExportShape: node bookkeeping and subsampling sizes.
func TestVizExportShape(t *testing.T) {
	sv := makeSolver(t, 1)
	full, err := BuildVizExport(sv, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantN := sv.Spec.Nr * sv.Spec.Nt * sv.Spec.Np
	for pi := range full.Fields {
		for f, data := range full.Fields[pi] {
			if len(data) != wantN {
				t.Fatalf("panel %d field %d: %d values, want %d", pi, f, len(data), wantN)
			}
		}
	}
	if full.Bytes() != int64(4*10*2*wantN) {
		t.Errorf("bytes = %d", full.Bytes())
	}

	sub, err := BuildVizExport(sv, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Every second angular node in each direction: roughly a quarter.
	ratio := float64(sub.Bytes()) / float64(full.Bytes())
	if ratio < 0.2 || ratio > 0.32 {
		t.Errorf("subsample ratio %v", ratio)
	}
	if _, err := BuildVizExport(sv, 0); err == nil {
		t.Error("zero subsample accepted")
	}
}

// TestVizExportPhysics: the exported temperature matches the state, and
// the Cartesian velocity magnitude matches the spherical magnitude
// (rotation to geographic components preserves length).
func TestVizExportPhysics(t *testing.T) {
	sv := makeSolver(t, 3)
	ex, err := BuildVizExport(sv, 1)
	if err != nil {
		t.Fatal(err)
	}
	for pi, pl := range sv.Panels {
		p := pl.Patch
		h := p.H
		idx := 0
		for k := 0; k < p.Np; k++ {
			for j := 0; j < p.Nt; j++ {
				for i := 0; i < p.Nr; i++ {
					wantT := pl.T.At(i+h, j+h, k+h)
					gotT := float64(ex.Fields[pi][9][idx])
					if math.Abs(gotT-wantT) > 1e-5*(1+math.Abs(wantT)) {
						t.Fatalf("T mismatch at %d: %v vs %v", idx, gotT, wantT)
					}
					vr := pl.V.R.At(i+h, j+h, k+h)
					vt := pl.V.T.At(i+h, j+h, k+h)
					vp := pl.V.P.At(i+h, j+h, k+h)
					wantMag := math.Sqrt(vr*vr + vt*vt + vp*vp)
					gx := float64(ex.Fields[pi][3][idx])
					gy := float64(ex.Fields[pi][4][idx])
					gz := float64(ex.Fields[pi][5][idx])
					gotMag := math.Sqrt(gx*gx + gy*gy + gz*gz)
					if math.Abs(gotMag-wantMag) > 1e-5*(1+wantMag) {
						t.Fatalf("|v| mismatch at %d: %v vs %v", idx, gotMag, wantMag)
					}
					idx++
				}
			}
		}
	}
}

func TestWriteVizExport(t *testing.T) {
	sv := makeSolver(t, 1)
	ex, err := BuildVizExport(sv, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteVizExport(&buf, ex); err != nil {
		t.Fatal(err)
	}
	want := 4 + 6*4 + 8 + int(ex.Bytes())
	if buf.Len() != want {
		t.Errorf("container size %d, want %d", buf.Len(), want)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte("YYVZ")) {
		t.Error("bad magic")
	}
}

// checkpointBytes serializes a small solver for the corruption tests.
func checkpointBytes(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, makeSolver(t, 1)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReadCheckpointTruncated: a checkpoint cut off at any point — an
// interrupted write, a torn download — must come back as an error, not
// a panic or a silently partial solver.
func TestReadCheckpointTruncated(t *testing.T) {
	raw := checkpointBytes(t)
	for _, cut := range []int{0, 1, 3, 4, 40, len(Magic) + 112, len(raw) / 2, len(raw) - 5, len(raw) - 1} {
		if _, err := ReadCheckpoint(bytes.NewReader(raw[:cut])); err == nil {
			t.Errorf("checkpoint truncated to %d of %d bytes read back without error", cut, len(raw))
		}
	}
}

// TestReadCheckpointBitFlips: every single-bit flip — header, payload
// or the stored checksum itself — is rejected (CRC-32 detects all
// single-bit errors; the header additionally carries sanity bounds so
// a flipped dimension cannot provoke a huge allocation first).
func TestReadCheckpointBitFlips(t *testing.T) {
	raw := checkpointBytes(t)
	positions := make([]int, 0, 256)
	for i := 0; i < len(Magic)+112 && i < len(raw); i++ {
		positions = append(positions, i) // the whole header, densely
	}
	payload := len(raw) - (len(Magic) + 112) - 4
	for i := 0; i < 16; i++ { // payload, sampled
		positions = append(positions, len(Magic)+112+i*payload/16)
	}
	for i := len(raw) - 4; i < len(raw); i++ {
		positions = append(positions, i) // the stored checksum itself
	}
	for _, pos := range positions {
		mut := append([]byte(nil), raw...)
		mut[pos] ^= 1 << (pos % 8)
		if _, err := ReadCheckpoint(bytes.NewReader(mut)); err == nil {
			t.Fatalf("bit flip at byte %d read back without error", pos)
		}
	}
}

// TestReadCheckpointHeaderBounds: implausible header fields are
// rejected before any allocation sized from them.
func TestReadCheckpointHeaderBounds(t *testing.T) {
	raw := checkpointBytes(t)
	corrupt := func(mutate func([]byte)) error {
		mut := append([]byte(nil), raw...)
		mutate(mut)
		_, err := ReadCheckpoint(bytes.NewReader(mut))
		return err
	}
	// Header field offsets (after the 4-byte magic): Nr at 8, Step at 104.
	err := corrupt(func(b []byte) { binary.LittleEndian.PutUint32(b[4+4:], 0x7fffffff) })
	if err == nil || !strings.Contains(err.Error(), "implausible grid") {
		t.Errorf("huge Nr: got %v, want an implausible-grid rejection", err)
	}
	err = corrupt(func(b []byte) { binary.LittleEndian.PutUint64(b[4+104:], ^uint64(0)) })
	if err == nil || !strings.Contains(err.Error(), "implausible clock") {
		t.Errorf("negative step: got %v, want an implausible-clock rejection", err)
	}
	err = corrupt(func(b []byte) { binary.LittleEndian.PutUint64(b[4+16:], math.Float64bits(math.NaN())) })
	if err == nil || !strings.Contains(err.Error(), "implausible shell radii") {
		t.Errorf("NaN RI: got %v, want an implausible-radii rejection", err)
	}
}

// TestReadCheckpointEmpty: an empty file is an error, never a panic.
func TestReadCheckpointEmpty(t *testing.T) {
	if _, err := ReadCheckpoint(bytes.NewReader(nil)); err == nil {
		t.Error("empty checkpoint read back without error")
	}
}

// TestReadErrorsNameOffset is the diagnosability satellite: decode and
// checksum failures name the byte offset of the damage, so a corrupt
// checkpoint is localizable without a hexdump hunt.
func TestReadErrorsNameOffset(t *testing.T) {
	raw := checkpointBytes(t)

	// A payload bit flip trips the trailing checksum; the message names
	// the stored and computed sums and the payload extent.
	mut := append([]byte(nil), raw...)
	mut[len(raw)/2] ^= 0x4
	_, err := ReadCheckpoint(bytes.NewReader(mut))
	if err == nil || !strings.Contains(err.Error(), "checksum mismatch over bytes 0..") ||
		!strings.Contains(err.Error(), "at offset") {
		t.Errorf("payload flip: got %v, want a checksum mismatch naming the offsets", err)
	}

	// A truncated payload fails mid-field; the message names the panel,
	// the scalar, and the byte offset reached.
	_, err = ReadCheckpoint(bytes.NewReader(raw[:len(raw)/2]))
	if err == nil || !strings.Contains(err.Error(), "reading field") ||
		!strings.Contains(err.Error(), "at byte offset") {
		t.Errorf("truncation: got %v, want a field-read failure naming the offset", err)
	}

	// A header failure names the offset too.
	_, err = ReadCheckpoint(bytes.NewReader(raw[:7]))
	if err == nil || !strings.Contains(err.Error(), "at byte offset") {
		t.Errorf("short header: got %v, want an offset-annotated header failure", err)
	}
}

// TestReadCheckpointFileNamesPath: the file-level reader prefixes
// failures with the path, completing the "which file, which byte"
// diagnosis.
func TestReadCheckpointFileNamesPath(t *testing.T) {
	raw := checkpointBytes(t)
	path := filepath.Join(t.TempDir(), "ckpt-000000001.yyck")
	mut := append([]byte(nil), raw...)
	mut[len(raw)/2] ^= 0x4
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := ReadCheckpointFile(path)
	if err == nil || !strings.Contains(err.Error(), path) || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Errorf("got %v, want an error naming %s and the checksum mismatch", err, path)
	}

	sv, err := ReadCheckpointFile(pathWrite(t, raw))
	if err != nil {
		t.Fatalf("clean file: %v", err)
	}
	if sv == nil || sv.Step != makeSolver(t, 1).Step {
		t.Fatal("clean file restored wrong state")
	}
}

func pathWrite(t *testing.T, raw []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ckpt-000000001.yyck")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}
