// Package spectral implements a direct spherical-harmonic transform —
// Gauss-Legendre quadrature in latitude, trigonometric projection in
// longitude, stable normalized associated-Legendre recurrences — the
// computational core of the spectral-method codes the paper compares
// against in Table III (Shingu's atmospheric model, Yokokawa's
// turbulence code).
//
// Its role here is the comparator: the transform's measured flops per
// grid point grows with resolution (O(L) per point per transform for the
// Legendre stage alone), while the finite-difference stencils of yycore
// cost a resolution-independent ~2.3K flops per point per step. That
// contrast is exactly Table III's 38K (spectral atmosphere) versus 19K
// (FD geodynamo) flops-per-gridpoint column at similar sustained
// efficiency — the quantitative argument for finite differences on
// massively parallel machines.
package spectral

import (
	"fmt"
	"math"

	"repro/internal/perfcount"
)

// GaussLegendre returns the n nodes and weights of Gauss-Legendre
// quadrature on [-1, 1], exact for polynomials of degree 2n-1. Nodes are
// found by Newton iteration from the Chebyshev initial guess.
func GaussLegendre(n int) (x, w []float64, err error) {
	if n < 1 {
		return nil, nil, fmt.Errorf("spectral: need at least 1 node, got %d", n)
	}
	x = make([]float64, n)
	w = make([]float64, n)
	for i := 0; i < (n+1)/2; i++ {
		// Initial guess (Chebyshev-like).
		z := math.Cos(math.Pi * (float64(i) + 0.75) / (float64(n) + 0.5))
		var pp float64
		for iter := 0; iter < 100; iter++ {
			// Legendre polynomial P_n(z) and derivative by recurrence.
			p1, p2 := 1.0, 0.0
			for j := 0; j < n; j++ {
				p3 := p2
				p2 = p1
				p1 = ((2*float64(j)+1)*z*p2 - float64(j)*p3) / (float64(j) + 1)
			}
			pp = float64(n) * (z*p1 - p2) / (z*z - 1)
			dz := p1 / pp
			z -= dz
			if math.Abs(dz) < 1e-15 {
				break
			}
		}
		x[i] = -z
		x[n-1-i] = z
		wi := 2 / ((1 - z*z) * pp * pp)
		w[i] = wi
		w[n-1-i] = wi
	}
	return x, w, nil
}

// legendreTable evaluates the orthonormal associated Legendre functions
// Phat_lm(x) for all 0 <= m <= l <= L at one x, filling tbl[l][m]. The
// normalization makes {Phat_lm e^{im phi}} orthonormal on the sphere.
func legendreTable(L int, x float64, tbl [][]float64) {
	sx := math.Sqrt(1 - x*x)
	tbl[0][0] = math.Sqrt(1 / (4 * math.Pi))
	for m := 1; m <= L; m++ {
		tbl[m][m] = -math.Sqrt((2*float64(m)+1)/(2*float64(m))) * sx * tbl[m-1][m-1]
	}
	for m := 0; m < L; m++ {
		tbl[m+1][m] = x * math.Sqrt(2*float64(m)+3) * tbl[m][m]
	}
	for m := 0; m <= L; m++ {
		for l := m + 2; l <= L; l++ {
			fl, fm := float64(l), float64(m)
			alm := math.Sqrt((4*fl*fl - 1) / (fl*fl - fm*fm))
			fl1 := fl - 1
			al1 := math.Sqrt((4*fl1*fl1 - 1) / (fl1*fl1 - fm*fm))
			tbl[l][m] = alm * (x*tbl[l-1][m] - tbl[l-2][m]/al1)
		}
	}
}

// Coeffs holds real spherical-harmonic coefficients: C[l][m] multiplies
// the cos(m phi) basis function and S[l][m] the sin(m phi) one (S[l][0]
// unused). The basis is orthonormal: f = sum C_lm Bc_lm + S_lm Bs_lm
// with Bc_l0 = Phat_l0, Bc_lm = sqrt2 Phat_lm cos(m phi), etc.
type Coeffs struct {
	L    int
	C, S [][]float64
}

// NewCoeffs allocates zero coefficients up to degree L.
func NewCoeffs(L int) *Coeffs {
	c := &Coeffs{L: L, C: make([][]float64, L+1), S: make([][]float64, L+1)}
	for l := 0; l <= L; l++ {
		c.C[l] = make([]float64, l+1)
		c.S[l] = make([]float64, l+1)
	}
	return c
}

// Transform is a spherical-harmonic analysis/synthesis engine of maximum
// degree L on its own Gauss-Legendre x equally-spaced grid.
type Transform struct {
	L          int
	NLat, NLon int
	X, W       []float64 // Gauss nodes (cos theta) and weights
	Phi        []float64
	// Precomputed Legendre tables per latitude: plm[j][l][m].
	plm [][][]float64
}

// NewTransform builds a transform of degree L. The grid (L+1 latitudes,
// 2L+2 longitudes) resolves products up to the transform's band limit
// for analysis of band-limited fields.
func NewTransform(L int) (*Transform, error) {
	if L < 1 {
		return nil, fmt.Errorf("spectral: need degree >= 1, got %d", L)
	}
	nLat := L + 1
	nLon := 2*L + 2
	x, w, err := GaussLegendre(nLat)
	if err != nil {
		return nil, err
	}
	t := &Transform{L: L, NLat: nLat, NLon: nLon, X: x, W: w}
	t.Phi = make([]float64, nLon)
	for k := range t.Phi {
		t.Phi[k] = 2 * math.Pi * float64(k) / float64(nLon)
	}
	t.plm = make([][][]float64, nLat)
	for j := 0; j < nLat; j++ {
		tbl := make([][]float64, L+1)
		for l := range tbl {
			tbl[l] = make([]float64, L+1)
		}
		legendreTable(L, x[j], tbl)
		t.plm[j] = tbl
	}
	return t, nil
}

// Grid allocates a field on the transform grid, indexed j*NLon + k.
func (t *Transform) Grid() []float64 { return make([]float64, t.NLat*t.NLon) }

// Theta returns the colatitude of latitude row j.
func (t *Transform) Theta(j int) float64 { return math.Acos(t.X[j]) }

// Analyze projects a grid field onto the harmonic coefficients.
func (t *Transform) Analyze(f []float64, c *Coeffs) error {
	if c.L != t.L || len(f) != t.NLat*t.NLon {
		return fmt.Errorf("spectral: shape mismatch")
	}
	L := t.L
	// Fourier analysis per latitude (direct, not FFT — the comparator
	// measures the classic transform structure).
	fc := make([][]float64, t.NLat) // fc[j][m]
	fs := make([][]float64, t.NLat)
	for j := 0; j < t.NLat; j++ {
		fc[j] = make([]float64, L+1)
		fs[j] = make([]float64, L+1)
		for m := 0; m <= L; m++ {
			var sc, ss float64
			for k := 0; k < t.NLon; k++ {
				v := f[j*t.NLon+k]
				sc += v * math.Cos(float64(m)*t.Phi[k])
				ss += v * math.Sin(float64(m)*t.Phi[k])
			}
			norm := 2 * math.Pi / float64(t.NLon)
			fc[j][m] = sc * norm
			fs[j][m] = ss * norm
		}
	}
	// Legendre analysis per order.
	for l := 0; l <= L; l++ {
		for m := 0; m <= l; m++ {
			var cc, cs float64
			for j := 0; j < t.NLat; j++ {
				p := t.plm[j][l][m]
				cc += t.W[j] * p * fc[j][m]
				cs += t.W[j] * p * fs[j][m]
			}
			if m == 0 {
				c.C[l][0] = cc
				c.S[l][0] = 0
			} else {
				// The real basis carries a sqrt2 against the complex-
				// normalized Phat.
				c.C[l][m] = cc * math.Sqrt2
				c.S[l][m] = cs * math.Sqrt2
			}
		}
	}
	n := int64(t.NLat * t.NLon)
	perfcount.AddFlops(n*int64(L+1)*4 + int64(t.NLat)*int64((L+1)*(L+2))*2)
	perfcount.AddVectorLoops(int64(t.NLat)*int64(L+1), n*int64(L+1))
	return nil
}

// Synthesize evaluates the harmonic expansion on the grid.
func (t *Transform) Synthesize(c *Coeffs, f []float64) error {
	if c.L != t.L || len(f) != t.NLat*t.NLon {
		return fmt.Errorf("spectral: shape mismatch")
	}
	L := t.L
	for j := 0; j < t.NLat; j++ {
		// Legendre synthesis: per-order latitude factors, then Fourier
		// synthesis in longitude. The real basis Bc_lm = sqrt2 Phat_lm
		// cos(m phi) contributes its sqrt2 exactly once here.
		gc := make([]float64, L+1)
		gs := make([]float64, L+1)
		for m := 0; m <= L; m++ {
			var sc, ss float64
			for l := m; l <= L; l++ {
				p := t.plm[j][l][m]
				sc += c.C[l][m] * p
				ss += c.S[l][m] * p
			}
			gc[m] = sc
			gs[m] = ss
		}
		for k := 0; k < t.NLon; k++ {
			v := gc[0]
			for m := 1; m <= L; m++ {
				ang := float64(m) * t.Phi[k]
				v += math.Sqrt2 * (gc[m]*math.Cos(ang) + gs[m]*math.Sin(ang))
			}
			f[j*t.NLon+k] = v
		}
	}
	n := int64(t.NLat * t.NLon)
	perfcount.AddFlops(n*int64(L+1)*4 + int64(t.NLat)*int64((L+1)*(L+2))*2)
	perfcount.AddVectorLoops(int64(t.NLat)*int64(L+1), n*int64(L+1))
	return nil
}

// FlopsPerPointPerTransformPair measures (via perfcount) the cost of one
// analysis + synthesis pair per grid point at degree L; the quantity the
// Table III comparison turns on.
func FlopsPerPointPerTransformPair(L int) (float64, error) {
	t, err := NewTransform(L)
	if err != nil {
		return 0, err
	}
	f := t.Grid()
	for i := range f {
		f[i] = math.Sin(3 * float64(i))
	}
	c := NewCoeffs(L)
	before := perfcount.Read()
	if err := t.Analyze(f, c); err != nil {
		return 0, err
	}
	if err := t.Synthesize(c, f); err != nil {
		return 0, err
	}
	d := perfcount.Read().Sub(before)
	return float64(d.Flops) / float64(t.NLat*t.NLon), nil
}
