package spectral

import (
	"math"
	"math/rand"
	"testing"
)

// TestGaussLegendreExactness: n-node rule integrates x^k exactly for
// k <= 2n-1 and fails beyond.
func TestGaussLegendreExactness(t *testing.T) {
	for _, n := range []int{1, 2, 5, 16, 33} {
		x, w, err := GaussLegendre(n)
		if err != nil {
			t.Fatal(err)
		}
		var wsum float64
		for _, wi := range w {
			wsum += wi
		}
		if math.Abs(wsum-2) > 1e-12 {
			t.Fatalf("n=%d: weights sum to %v", n, wsum)
		}
		for k := 0; k <= 2*n-1; k++ {
			var got float64
			for i := range x {
				got += w[i] * math.Pow(x[i], float64(k))
			}
			want := 0.0
			if k%2 == 0 {
				want = 2 / float64(k+1)
			}
			if math.Abs(got-want) > 1e-10 {
				t.Fatalf("n=%d k=%d: %v vs %v", n, k, got, want)
			}
		}
	}
	if _, _, err := GaussLegendre(0); err == nil {
		t.Error("zero nodes accepted")
	}
}

// TestLegendreOrthonormal: sum_j w_j Phat_lm Phat_l'm = delta_ll'/(2 pi).
func TestLegendreOrthonormal(t *testing.T) {
	const L = 12
	x, w, _ := GaussLegendre(L + 1)
	tbls := make([][][]float64, len(x))
	for j := range x {
		tbl := make([][]float64, L+1)
		for l := range tbl {
			tbl[l] = make([]float64, L+1)
		}
		legendreTable(L, x[j], tbl)
		tbls[j] = tbl
	}
	for m := 0; m <= L; m++ {
		for l1 := m; l1 <= L; l1++ {
			for l2 := m; l2 <= L; l2++ {
				if l1+l2 > 2*L+1 { // beyond quadrature exactness
					continue
				}
				var s float64
				for j := range x {
					s += w[j] * tbls[j][l1][m] * tbls[j][l2][m]
				}
				want := 0.0
				if l1 == l2 {
					want = 1 / (2 * math.Pi)
				}
				if math.Abs(s-want) > 1e-10 {
					t.Fatalf("m=%d l=%d,%d: %v vs %v", m, l1, l2, s, want)
				}
			}
		}
	}
}

// TestRoundTrip: synthesize random band-limited coefficients, analyze,
// recover them to near machine precision.
func TestRoundTrip(t *testing.T) {
	const L = 10
	tr, err := NewTransform(L)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(5))
	c := NewCoeffs(L)
	for l := 0; l <= L; l++ {
		for m := 0; m <= l; m++ {
			c.C[l][m] = r.NormFloat64()
			if m > 0 {
				c.S[l][m] = r.NormFloat64()
			}
		}
	}
	f := tr.Grid()
	if err := tr.Synthesize(c, f); err != nil {
		t.Fatal(err)
	}
	got := NewCoeffs(L)
	if err := tr.Analyze(f, got); err != nil {
		t.Fatal(err)
	}
	var m float64
	for l := 0; l <= L; l++ {
		for mm := 0; mm <= l; mm++ {
			if e := math.Abs(got.C[l][mm] - c.C[l][mm]); e > m {
				m = e
			}
			if e := math.Abs(got.S[l][mm] - c.S[l][mm]); e > m {
				m = e
			}
		}
	}
	if m > 1e-10 {
		t.Errorf("round-trip error %g", m)
	}
}

// TestAnalyzeKnownField: f = Y10-like cos(theta) projects onto C[1][0]
// only, with the orthonormal amplitude sqrt(4 pi / 3).
func TestAnalyzeKnownField(t *testing.T) {
	const L = 6
	tr, _ := NewTransform(L)
	f := tr.Grid()
	for j := 0; j < tr.NLat; j++ {
		for k := 0; k < tr.NLon; k++ {
			f[j*tr.NLon+k] = tr.X[j] // cos(theta)
		}
	}
	c := NewCoeffs(L)
	if err := tr.Analyze(f, c); err != nil {
		t.Fatal(err)
	}
	// cos(theta) = sqrt(4 pi / 3) * Phat_10.
	want := math.Sqrt(4 * math.Pi / 3)
	if math.Abs(math.Abs(c.C[1][0])-want) > 1e-10 {
		t.Errorf("C[1][0] = %v, want +-%v", c.C[1][0], want)
	}
	// Everything else vanishes.
	for l := 0; l <= L; l++ {
		for m := 0; m <= l; m++ {
			if l == 1 && m == 0 {
				continue
			}
			if math.Abs(c.C[l][m]) > 1e-10 || math.Abs(c.S[l][m]) > 1e-10 {
				t.Errorf("leakage into (%d,%d): %v / %v", l, m, c.C[l][m], c.S[l][m])
			}
		}
	}
}

// TestParsevalIdentity: the orthonormal basis preserves the surface
// integral of f^2.
func TestParsevalIdentity(t *testing.T) {
	const L = 8
	tr, _ := NewTransform(L)
	r := rand.New(rand.NewSource(9))
	c := NewCoeffs(L)
	var want float64
	for l := 0; l <= L; l++ {
		for m := 0; m <= l; m++ {
			c.C[l][m] = r.NormFloat64()
			want += c.C[l][m] * c.C[l][m]
			if m > 0 {
				c.S[l][m] = r.NormFloat64()
				want += c.S[l][m] * c.S[l][m]
			}
		}
	}
	f := tr.Grid()
	if err := tr.Synthesize(c, f); err != nil {
		t.Fatal(err)
	}
	var got float64
	for j := 0; j < tr.NLat; j++ {
		for k := 0; k < tr.NLon; k++ {
			v := f[j*tr.NLon+k]
			got += tr.W[j] * v * v * 2 * math.Pi / float64(tr.NLon)
		}
	}
	if math.Abs(got-want) > 1e-8*(1+want) {
		t.Errorf("Parseval: grid %v vs coeffs %v", got, want)
	}
}

// TestFlopsPerPointGrows: the transform's per-point cost grows with
// resolution — the structural contrast with finite differences that
// Table III's flops-per-gridpoint column reflects.
func TestFlopsPerPointGrows(t *testing.T) {
	f16, err := FlopsPerPointPerTransformPair(16)
	if err != nil {
		t.Fatal(err)
	}
	f64, err := FlopsPerPointPerTransformPair(64)
	if err != nil {
		t.Fatal(err)
	}
	if f16 <= 0 {
		t.Fatal("no flops measured")
	}
	ratio := f64 / f16
	if ratio < 3 {
		t.Errorf("per-point cost should grow ~linearly with L: %v -> %v (ratio %.2f)", f16, f64, ratio)
	}
}

func TestTransformValidation(t *testing.T) {
	if _, err := NewTransform(0); err == nil {
		t.Error("degree 0 accepted")
	}
	tr, _ := NewTransform(4)
	if err := tr.Analyze(make([]float64, 3), NewCoeffs(4)); err == nil {
		t.Error("shape mismatch accepted")
	}
	if err := tr.Synthesize(NewCoeffs(5), tr.Grid()); err == nil {
		t.Error("degree mismatch accepted")
	}
}
