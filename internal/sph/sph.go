// Package sph provides the spherical-harmonic and magnetic-moment
// diagnostics used to monitor the dynamo: the growth, strength and tilt
// of the dipole component of the generated field, the quantity whose
// reversals the group's earlier work followed (Li, Sato and Kageyama
// 2002; Kageyama et al. 1999) and which section V of the paper names as
// the long-time goal of the runs.
package sph

import (
	"math"

	"repro/internal/coords"
	"repro/internal/grid"
	"repro/internal/mhd"
)

// SurfaceCoeffs are the real spherical-harmonic coefficients up to
// degree 2 of a scalar sampled on the sphere, in the real basis
// {Y10, Y11c, Y11s, Y20, Y21c, Y21s, Y22c, Y22s} with Schmidt-like
// normalization: expanding f = sum c_i B_i(theta, phi) with the basis
// functions below.
type SurfaceCoeffs struct {
	Y00             float64
	Y10, Y11c, Y11s float64
	Y20, Y21c, Y21s float64
	Y22c, Y22s      float64
}

// basis lists the real harmonics and the normalization integrals
// int B^2 dOmega used to project.
var basis = []struct {
	name string
	fn   func(th, ph float64) float64
	norm float64
}{
	{"Y00", func(th, ph float64) float64 { return 1 }, 4 * math.Pi},
	{"Y10", func(th, ph float64) float64 { return math.Cos(th) }, 4 * math.Pi / 3},
	{"Y11c", func(th, ph float64) float64 { return math.Sin(th) * math.Cos(ph) }, 4 * math.Pi / 3},
	{"Y11s", func(th, ph float64) float64 { return math.Sin(th) * math.Sin(ph) }, 4 * math.Pi / 3},
	{"Y20", func(th, ph float64) float64 { c := math.Cos(th); return 1.5*c*c - 0.5 }, 4 * math.Pi / 5},
	{"Y21c", func(th, ph float64) float64 { return 3 * math.Sin(th) * math.Cos(th) * math.Cos(ph) }, 12 * math.Pi / 5},
	{"Y21s", func(th, ph float64) float64 { return 3 * math.Sin(th) * math.Cos(th) * math.Sin(ph) }, 12 * math.Pi / 5},
	{"Y22c", func(th, ph float64) float64 { s := math.Sin(th); return 3 * s * s * math.Cos(2*ph) }, 48 * math.Pi / 5},
	{"Y22s", func(th, ph float64) float64 { s := math.Sin(th); return 3 * s * s * math.Sin(2*ph) }, 48 * math.Pi / 5},
}

// AnalyzeSurface projects a per-panel sampling function onto the basis.
// sample(panel, j, k) must return the scalar at the panel's angular node
// (j, k) in padded indices; the projection weights each node with the
// panel ownership partition so the overlap counts once.
func AnalyzeSurface(sv *mhd.Solver, sample func(pl *mhd.Panel, j, k int) float64) SurfaceCoeffs {
	var raw [9]float64
	for _, pl := range sv.Panels {
		p := pl.Patch
		h := p.H
		_, ntP, _ := p.Padded()
		for k := h; k < h+p.Np; k++ {
			for j := h; j < h+p.Nt; j++ {
				own := pl.Own[k*ntP+j]
				if own <= 0 {
					continue
				}
				wq := 1.0
				if j == h || j == h+p.Nt-1 {
					wq *= 0.5
				}
				if k == h || k == h+p.Np-1 {
					wq *= 0.5
				}
				w := own * wq * p.SinT[j] * p.Dt * p.Dp
				v := sample(pl, j, k)
				// Geographic angles of this node.
				th, ph := p.Theta[j], p.Phi[k]
				if p.Panel == grid.Yang {
					th, ph = coords.YinYangAngles(th, ph)
				}
				for bi, b := range basis {
					raw[bi] += w * v * b.fn(th, ph)
				}
			}
		}
	}
	for bi, b := range basis {
		raw[bi] /= b.norm
	}
	return SurfaceCoeffs{
		Y00: raw[0],
		Y10: raw[1], Y11c: raw[2], Y11s: raw[3],
		Y20: raw[4], Y21c: raw[5], Y21s: raw[6],
		Y22c: raw[7], Y22s: raw[8],
	}
}

// DipoleVector returns the degree-1 part as a Cartesian vector
// (Y11c, Y11s, Y10) — for a radial-field expansion this is proportional
// to the dipole axis.
func (c SurfaceCoeffs) DipoleVector() coords.Cartesian {
	return coords.Cartesian{X: c.Y11c, Y: c.Y11s, Z: c.Y10}
}

// DipoleTiltDeg returns the angle in degrees between the dipole axis and
// the rotation (z) axis; 0 means an axial dipole, 90 an equatorial one.
func (c SurfaceCoeffs) DipoleTiltDeg() float64 {
	v := c.DipoleVector()
	m := math.Sqrt(v.X*v.X + v.Y*v.Y + v.Z*v.Z)
	if m <= 0 {
		return 0
	}
	return math.Acos(clamp(v.Z/m, -1, 1)) * 180 / math.Pi
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// MagneticMoment computes the magnetic dipole moment of the internal
// current distribution, m = (1/2) integral of r x j dV, in geographic
// Cartesian components. For the magnetically confined shell (Br pinned
// to zero at the walls) this is the natural measure of the dynamo's
// dipole: it grows as the dynamo amplifies the seed and flips sign at a
// polarity reversal. ComputeVTB and FinishRHS-side currents must be
// current; callers should invoke mhd.ComputeVTB plus the J update, or
// simply use MomentOf below which recomputes everything it needs.
func MagneticMoment(sv *mhd.Solver) coords.Cartesian {
	var m coords.Cartesian
	for _, pl := range sv.Panels {
		mhd.ComputeVTB(pl, &pl.U)
		mhd.ComputeJ(pl)
		p := pl.Patch
		h := p.H
		_, ntP, _ := p.Padded()
		for k := h; k < h+p.Np; k++ {
			for j := h; j < h+p.Nt; j++ {
				own := pl.Own[k*ntP+j]
				if own <= 0 {
					continue
				}
				th, ph := p.Theta[j], p.Phi[k]
				for i := h; i < h+p.Nr; i++ {
					w := own * p.CellVolume(i, j, k)
					// r x j with r = r rhat: r x j = r (rhat x j) =
					// r (-jp thetahat + jt phihat).
					rxj := coords.SphVec{
						VR: 0,
						VT: -p.R[i] * pl.J.P.At(i, j, k),
						VP: p.R[i] * pl.J.T.At(i, j, k),
					}
					c := coords.SphToCartVec(th, ph, rxj)
					if p.Panel == grid.Yang {
						c = coords.YinYang(c)
					}
					m.X += 0.5 * w * c.X
					m.Y += 0.5 * w * c.Y
					m.Z += 0.5 * w * c.Z
				}
			}
		}
	}
	return m
}

// MomentMagnitude returns |m|.
func MomentMagnitude(m coords.Cartesian) float64 {
	return math.Sqrt(m.X*m.X + m.Y*m.Y + m.Z*m.Z)
}

// Reversal detection: the group's earlier work (Li, Sato & Kageyama
// 2002) followed spontaneous sign flips of the axial dipole; section V
// names longer runs toward such reversals as the goal. DetectReversals
// scans a time series of dipole moments for sign changes of the axial
// component that persist (not single-sample noise).

// ReversalEvent marks one polarity flip in a moment series.
type ReversalEvent struct {
	Index int     // series index where the new polarity is established
	From  float64 // axial moment before
	To    float64 // axial moment after
}

// DetectReversals finds persistent sign changes of m_z in the series:
// the sign must hold for at least persist consecutive samples on both
// sides, and the magnitude must exceed floor (to ignore noise around
// zero crossings).
func DetectReversals(mz []float64, persist int, floor float64) []ReversalEvent {
	if persist < 1 {
		persist = 1
	}
	holds := func(i int, sign float64) bool {
		for k := 0; k < persist; k++ {
			idx := i + k
			if idx >= len(mz) {
				return false
			}
			if mz[idx]*sign <= floor {
				return false
			}
		}
		return true
	}
	var events []ReversalEvent
	i := 0
	// Find the first established polarity.
	var cur float64
	established := false
	for ; i < len(mz); i++ {
		switch {
		case holds(i, 1):
			cur, established = 1, true
		case holds(i, -1):
			cur, established = -1, true
		}
		if established {
			break
		}
	}
	for ; i < len(mz); i++ {
		if holds(i, -cur) {
			events = append(events, ReversalEvent{Index: i, From: cur, To: -cur})
			cur = -cur
		}
	}
	return events
}
