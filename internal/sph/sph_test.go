package sph

import (
	"math"
	"testing"

	"repro/internal/coords"
	"repro/internal/grid"
	"repro/internal/mhd"
)

func quietSolver(t *testing.T, nt int, ic mhd.InitialConditions) *mhd.Solver {
	t.Helper()
	prm := mhd.Params{Gamma: 5. / 3., Mu: 2e-3, Kappa: 2e-3, Eta: 2e-3, G0: 0, Omega: 0, TIn: 1}
	sv, err := mhd.NewSolver(grid.NewSpec(9, nt), prm, ic)
	if err != nil {
		t.Fatal(err)
	}
	return sv
}

// geoAngles returns the geographic angles of a panel node.
func geoAngles(pl *mhd.Panel, j, k int) (float64, float64) {
	th, ph := pl.Patch.Theta[j], pl.Patch.Phi[k]
	if pl.Patch.Panel == grid.Yang {
		return coords.YinYangAngles(th, ph)
	}
	return th, ph
}

// TestAnalyzeSurfaceRecovery: projecting a synthetic combination of
// harmonics recovers its coefficients.
func TestAnalyzeSurfaceRecovery(t *testing.T) {
	sv := quietSolver(t, 33, mhd.InitialConditions{})
	coeffs := AnalyzeSurface(sv, func(pl *mhd.Panel, j, k int) float64 {
		th, ph := geoAngles(pl, j, k)
		c, s := math.Cos(th), math.Sin(th)
		return 1.0*c + 0.3*s*math.Cos(ph) + 0.1*3*s*s*math.Sin(2*ph) + 0.05
	})
	checks := []struct {
		name      string
		got, want float64
	}{
		{"Y00", coeffs.Y00, 0.05},
		{"Y10", coeffs.Y10, 1.0},
		{"Y11c", coeffs.Y11c, 0.3},
		{"Y11s", coeffs.Y11s, 0},
		{"Y20", coeffs.Y20, 0},
		{"Y22s", coeffs.Y22s, 0.1},
		{"Y22c", coeffs.Y22c, 0},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > 0.02 {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
}

func TestDipoleTilt(t *testing.T) {
	axial := SurfaceCoeffs{Y10: 2}
	if tilt := axial.DipoleTiltDeg(); math.Abs(tilt) > 1e-9 {
		t.Errorf("axial tilt = %v", tilt)
	}
	equatorial := SurfaceCoeffs{Y11c: 1}
	if tilt := equatorial.DipoleTiltDeg(); math.Abs(tilt-90) > 1e-9 {
		t.Errorf("equatorial tilt = %v", tilt)
	}
	if (SurfaceCoeffs{}).DipoleTiltDeg() != 0 {
		t.Error("zero field tilt should be 0")
	}
	v := (SurfaceCoeffs{Y10: 3, Y11c: 4}).DipoleVector()
	if v.Z != 3 || v.X != 4 || v.Y != 0 {
		t.Errorf("dipole vector %+v", v)
	}
}

// TestMagneticMomentAxialSeed: the standard seed field points along the
// geographic z axis, so the current distribution's moment must be axial,
// and its magnitude must scale linearly with the seed amplitude.
func TestMagneticMomentAxialSeed(t *testing.T) {
	m1 := MagneticMoment(quietSolver(t, 17, mhd.InitialConditions{SeedBAmp: 0.05, Seed: 1}))
	mag1 := MomentMagnitude(m1)
	if mag1 <= 0 {
		t.Fatal("zero moment for seeded field")
	}
	if math.Abs(m1.X)/mag1 > 0.02 || math.Abs(m1.Y)/mag1 > 0.02 {
		t.Errorf("moment not axial: %+v", m1)
	}
	if m1.Z <= 0 {
		t.Errorf("moment should point along +z for the +Bz seed: %+v", m1)
	}
	m2 := MagneticMoment(quietSolver(t, 17, mhd.InitialConditions{SeedBAmp: 0.10, Seed: 1}))
	ratio := MomentMagnitude(m2) / mag1
	if math.Abs(ratio-2) > 0.05 {
		t.Errorf("moment should double with the seed: ratio %v", ratio)
	}
}

// TestMomentZeroWithoutField: no seed, no moment.
func TestMomentZeroWithoutField(t *testing.T) {
	m := MagneticMoment(quietSolver(t, 17, mhd.InitialConditions{}))
	if MomentMagnitude(m) != 0 {
		t.Errorf("moment %v for field-free state", m)
	}
}

// TestDetectReversals: a synthetic dipole series with two persistent
// flips and one noise blip yields exactly two events.
func TestDetectReversals(t *testing.T) {
	mz := []float64{
		1, 1.1, 0.9, 1.0, // established positive
		-0.05, // noise blip below floor: ignored
		1.0, 1.2,
		-0.8, -0.9, -1.0, // first reversal
		-1.1, -0.9,
		0.7, 0.9, 1.1, // second reversal
	}
	ev := DetectReversals(mz, 3, 0.1)
	if len(ev) != 2 {
		t.Fatalf("events = %+v", ev)
	}
	if ev[0].From != 1 || ev[0].To != -1 || ev[1].From != -1 || ev[1].To != 1 {
		t.Errorf("polarities wrong: %+v", ev)
	}
	if ev[0].Index != 7 || ev[1].Index != 12 {
		t.Errorf("indices: %+v", ev)
	}
	if got := DetectReversals([]float64{1, 1, 1, 1}, 2, 0.1); len(got) != 0 {
		t.Errorf("steady series produced events %+v", got)
	}
	if got := DetectReversals(nil, 2, 0.1); len(got) != 0 {
		t.Errorf("empty series produced events %+v", got)
	}
}
