package sphops

import (
	"repro/internal/fd"
	"repro/internal/field"
	"repro/internal/grid"
)

// VDotGrad computes the advective derivative (v . grad) s of a scalar:
//
//	vr ds/dr + (vt/r) ds/dt + (vp/(r sin t)) ds/dp.
func VDotGrad(p *grid.Patch, v *field.Vector, s *field.Scalar, out *field.Scalar, w *Workspace) {
	dr := w.Get()
	dt := w.Get()
	dp := w.Get()
	defer w.Put(dr, dt, dp)
	fd.Deriv1R(p, s, dr)
	fd.Deriv1T(p, s, dt)
	fd.Deriv1P(p, s, dp)
	h := p.H
	sweep(p, 8, func(j, k int) {
		or := out.Row(j, k)
		vr := v.R.Row(j, k)
		vt := v.T.Row(j, k)
		vp := v.P.Row(j, k)
		a := dr.Row(j, k)
		b := dt.Row(j, k)
		c := dp.Row(j, k)
		ist := p.InvSinT[j]
		for i := h; i < h+p.Nr; i++ {
			ir := p.InvR[i]
			or[i] = vr[i]*a[i] + vt[i]*ir*b[i] + vp[i]*ir*ist*c[i]
		}
	})
}

// DivTensorVF computes the divergence of the momentum-flux tensor
// T_ab = v_a f_b, i.e. (div (v f))_b, the advection term of eq. (3).
// The spherical-tensor Christoffel corrections are
//
//	r:  - (vt ft + vp fp)/r
//	t:  + (vt fr)/r - cot(t) (vp fp)/r
//	p:  + (vp fr)/r + cot(t) (vp ft)/r
//
// on top of the scalar-flux divergence of each component flux (vr f_b,
// vt f_b, vp f_b).
func DivTensorVF(p *grid.Patch, v, f *field.Vector, out *field.Vector, w *Workspace) {
	pr := w.Get()
	pt := w.Get()
	pp := w.Get()
	dr := w.Get()
	dt := w.Get()
	dp := w.Get()
	defer w.Put(pr, pt, pp, dr, dt, dp)

	h := p.H
	for comp, fb := range f.Components() {
		// Products v_a * f_b for the three flux directions, over the full
		// padded arrays: the derivative stencils consume them at boundary
		// nodes and (at decomposition seams) at halo nodes.
		vrD, vtD, vpD := v.R.Data, v.T.Data, v.P.Data
		fbD := fb.Data
		prD, ptD, ppD := pr.Data, pt.Data, pp.Data
		p.Par.For(len(fbD), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				prD[i] = vrD[i] * fbD[i]
				ptD[i] = vtD[i] * fbD[i]
				ppD[i] = vpD[i] * fbD[i]
			}
		})
		countFull(fb, 3)
		fd.Deriv1R(p, pr, dr)
		fd.Deriv1T(p, pt, dt)
		fd.Deriv1P(p, pp, dp)

		outc := out.Components()[comp]
		sweep(p, 12, func(j, k int) {
			or := outc.Row(j, k)
			a := dr.Row(j, k)
			b := dt.Row(j, k)
			c := dp.Row(j, k)
			prr := pr.Row(j, k)
			ptr := pt.Row(j, k)
			vtR := v.T.Row(j, k)
			vpR := v.P.Row(j, k)
			frR := f.R.Row(j, k)
			ftR := f.T.Row(j, k)
			fpR := f.P.Row(j, k)
			cot := p.CotT[j]
			ist := p.InvSinT[j]
			for i := h; i < h+p.Nr; i++ {
				ir := p.InvR[i]
				// Scalar-flux divergence of (pr, pt, pp).
				div := a[i] + 2*prr[i]*ir + ir*(b[i]+cot*ptr[i]) + ir*ist*c[i]
				// Christoffel corrections per output component.
				switch comp {
				case 0:
					div -= (vtR[i]*ftR[i] + vpR[i]*fpR[i]) * ir
				case 1:
					div += (vtR[i]*frR[i] - cot*vpR[i]*fpR[i]) * ir
				case 2:
					div += (vpR[i]*frR[i] + cot*vpR[i]*ftR[i]) * ir
				}
				or[i] = div
			}
		})
	}
}

// StrainSquared computes S = e_ij e_ij - (1/3)(div v)^2, so that the
// viscous dissipation function of eq. (6) is Phi = 2 mu S. The strain-rate
// components in spherical coordinates are
//
//	e_rr = dvr/dr
//	e_tt = (1/r) dvt/dt + vr/r
//	e_pp = (1/(r sin t)) dvp/dp + vr/r + cot(t) vt/r
//	e_rt = (1/2)((1/r) dvr/dt + dvt/dr - vt/r)
//	e_rp = (1/2)((1/(r sin t)) dvr/dp + dvp/dr - vp/r)
//	e_tp = (1/2)((1/(r sin t)) dvt/dp + (1/r) dvp/dt - cot(t) vp/r)
func StrainSquared(p *grid.Patch, v *field.Vector, out *field.Scalar, w *Workspace) {
	drvr := w.Get()
	dtvt := w.Get()
	dpvp := w.Get()
	dtvr := w.Get()
	drvt := w.Get()
	dpvr := w.Get()
	drvp := w.Get()
	dpvt := w.Get()
	dtvp := w.Get()
	defer w.Put(drvr, dtvt, dpvp, dtvr, drvt, dpvr, drvp, dpvt, dtvp)
	fd.Deriv1R(p, v.R, drvr)
	fd.Deriv1T(p, v.T, dtvt)
	fd.Deriv1P(p, v.P, dpvp)
	fd.Deriv1T(p, v.R, dtvr)
	fd.Deriv1R(p, v.T, drvt)
	fd.Deriv1P(p, v.R, dpvr)
	fd.Deriv1R(p, v.P, drvp)
	fd.Deriv1P(p, v.T, dpvt)
	fd.Deriv1T(p, v.P, dtvp)

	h := p.H
	sweep(p, 40, func(j, k int) {
		or := out.Row(j, k)
		vr := v.R.Row(j, k)
		vt := v.T.Row(j, k)
		vp := v.P.Row(j, k)
		a := drvr.Row(j, k)
		b := dtvt.Row(j, k)
		c := dpvp.Row(j, k)
		d := dtvr.Row(j, k)
		e := drvt.Row(j, k)
		f := dpvr.Row(j, k)
		g := drvp.Row(j, k)
		q := dpvt.Row(j, k)
		s := dtvp.Row(j, k)
		cot := p.CotT[j]
		ist := p.InvSinT[j]
		for i := h; i < h+p.Nr; i++ {
			ir := p.InvR[i]
			err := a[i]
			ett := ir*b[i] + vr[i]*ir
			epp := ir*ist*c[i] + vr[i]*ir + cot*vt[i]*ir
			ert := 0.5 * (ir*d[i] + e[i] - vt[i]*ir)
			erp := 0.5 * (ir*ist*f[i] + g[i] - vp[i]*ir)
			etp := 0.5 * (ir*ist*q[i] + ir*s[i] - cot*vp[i]*ir)
			div := err + ett + epp
			or[i] = err*err + ett*ett + epp*epp +
				2*(ert*ert+erp*erp+etp*etp) - div*div/3
		}
	})
}

// Cross computes the pointwise cross product a x b in spherical
// components:
//
//	(a x b)_r = at bp - ap bt
//	(a x b)_t = ap br - ar bp
//	(a x b)_p = ar bt - at br
//
// evaluated over the full padded arrays so that boundary and halo nodes
// (when valid) carry consistent values for subsequent differentiation.
func Cross(a, b, out *field.Vector) {
	ar, at, ap := a.R.Data, a.T.Data, a.P.Data
	br, bt, bp := b.R.Data, b.T.Data, b.P.Data
	or, ot, op := out.R.Data, out.T.Data, out.P.Data
	for i := range or {
		or[i] = at[i]*bp[i] - ap[i]*bt[i]
		ot[i] = ap[i]*br[i] - ar[i]*bp[i]
		op[i] = ar[i]*bt[i] - at[i]*br[i]
	}
	countFull(a.R, 9)
}

// MagSquared computes the pointwise squared magnitude |v|^2 over the full
// padded arrays.
func MagSquared(v *field.Vector, out *field.Scalar) {
	vr, vt, vp := v.R.Data, v.T.Data, v.P.Data
	o := out.Data
	for i := range o {
		o[i] = vr[i]*vr[i] + vt[i]*vt[i] + vp[i]*vp[i]
	}
	countFull(out, 5)
}

func countFull(f *field.Scalar, fl int) {
	nr, nt, np := f.Padded()
	n := int64(nr) * int64(nt) * int64(np)
	rows := int64(nt) * int64(np)
	// Counted through the field package's conventions.
	countN(n, rows, int64(fl))
}
