package sphops

import (
	"math"
	"testing"

	"repro/internal/field"
	"repro/internal/grid"
)

// Manufactured solution f = sin(pi r) cos(theta) sin(2 phi) and its
// exact spherical gradient and Laplacian.
func mmsF(r, t, p float64) float64 {
	return math.Sin(math.Pi*r) * math.Cos(t) * math.Sin(2*p)
}

func mmsGrad(r, t, p float64) (gr, gt, gp float64) {
	gr = math.Pi * math.Cos(math.Pi*r) * math.Cos(t) * math.Sin(2*p)
	gt = -math.Sin(math.Pi*r) * math.Sin(t) * math.Sin(2*p) / r
	gp = 2 * math.Sin(math.Pi*r) * math.Cos(t) * math.Cos(2*p) / (r * math.Sin(t))
	return
}

func mmsLap(r, t, p float64) float64 {
	radial := (-math.Pi*math.Pi*math.Sin(math.Pi*r) + 2*math.Pi*math.Cos(math.Pi*r)/r) *
		math.Cos(t) * math.Sin(2*p)
	theta := -2 * math.Cos(t) * math.Sin(math.Pi*r) * math.Sin(2*p) / (r * r)
	phi := -4 * math.Sin(math.Pi*r) * math.Cos(t) * math.Sin(2*p) / (r * r * math.Sin(t) * math.Sin(t))
	return radial + theta + phi
}

// Manufactured vector v = (0, 0, f) and its exact curl in this
// package's component convention:
//
//	curl_r = (1/r)(df/dt + cot(t) f)
//	curl_t = -df/dr - f/r
//	curl_p = 0.
func mmsVecP(r, t, p float64) (vr, vt, vp float64) {
	return 0, 0, mmsF(r, t, p)
}

func mmsCurlVecP(r, t, p float64) (cr, ct, cp float64) {
	cr = math.Sin(math.Pi*r) * math.Sin(2*p) * math.Cos(2*t) / (r * math.Sin(t))
	ct = -math.Cos(t) * math.Sin(2*p) * (math.Pi*math.Cos(math.Pi*r) + math.Sin(math.Pi*r)/r)
	cp = 0
	return
}

func fitOrder(hs, errs []float64) float64 {
	n := float64(len(hs))
	var sx, sy, sxx, sxy float64
	for i := range hs {
		x, y := math.Log(hs[i]), math.Log(errs[i])
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	return (n*sxy - sx*sy) / (n*sxx - sx*sx)
}

// TestMMSFittedOrder pins second-order convergence of the spherical
// operators — Grad, LapScalar, and Div (fed the exact gradient so its
// exact result is the Laplacian) — on the manufactured field across
// three resolutions. The error is measured over a fixed physical
// subdomain and the fitted order must be 2 within 0.15.
func TestMMSFittedOrder(t *testing.T) {
	nts := []int{17, 25, 33}
	type sample struct {
		name string
		err  func(p *grid.Patch) float64
	}
	cases := []sample{
		{"Grad", func(p *grid.Patch) float64 {
			f := p.NewScalar()
			out := field.NewVector(f.Shape)
			fillScalar(p, f, mmsF)
			w := NewWorkspace(p)
			Grad(p, f, out, w)
			return maxErrVector(p, out, mmsGrad, (p.Nt-1)/8)
		}},
		{"LapScalar", func(p *grid.Patch) float64 {
			f := p.NewScalar()
			out := p.NewScalar()
			fillScalar(p, f, mmsF)
			w := NewWorkspace(p)
			LapScalar(p, f, out, w)
			return maxErrScalar(p, out, mmsLap, (p.Nt-1)/8)
		}},
		{"Div", func(p *grid.Patch) float64 {
			v := field.NewVector(p.NewScalar().Shape)
			out := p.NewScalar()
			fillVector(p, v, mmsGrad)
			w := NewWorkspace(p)
			Div(p, v, out, w)
			return maxErrScalar(p, out, mmsLap, (p.Nt-1)/8)
		}},
		// The fused single-pass region kernels behind the RHS schedule
		// must converge at the same order as the generic ops they
		// replace: a fusion that silently degraded a stencil would pass
		// fixed-resolution comparisons against itself but fail the fit.
		{"DivFused", func(p *grid.Patch) float64 {
			v := field.NewVector(p.NewScalar().Shape)
			out := p.NewScalar()
			fillVector(p, v, mmsGrad)
			w := NewWorkspace(p)
			DivOn(p, p.OwnedRegion(), v, out, w)
			return maxErrScalar(p, out, mmsLap, (p.Nt-1)/8)
		}},
		{"CurlFused", func(p *grid.Patch) float64 {
			v := field.NewVector(p.NewScalar().Shape)
			out := field.NewVector(v.R.Shape)
			fillVector(p, v, mmsVecP)
			w := NewWorkspace(p)
			CurlOn(p, p.OwnedRegion(), v, out, w)
			return maxErrVector(p, out, mmsCurlVecP, (p.Nt-1)/8)
		}},
	}
	for _, c := range cases {
		var hs, errs []float64
		for _, nt := range nts {
			p := patch(nt)
			hs = append(hs, p.Dt)
			errs = append(errs, c.err(p))
		}
		fit := fitOrder(hs, errs)
		if math.Abs(fit-2) > 0.15 {
			t.Errorf("%s: fitted convergence order %.3f, want 2.00 +- 0.15 (errors %v at h %v)",
				c.name, fit, errs, hs)
		}
	}
}
