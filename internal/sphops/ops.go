package sphops

import (
	"repro/internal/fd"
	"repro/internal/field"
	"repro/internal/grid"
)

// Grad computes the gradient of scalar s:
//
//	(grad s)_r     = ds/dr
//	(grad s)_theta = (1/r) ds/dtheta
//	(grad s)_phi   = (1/(r sin theta)) ds/dphi
func Grad(p *grid.Patch, s *field.Scalar, out *field.Vector, w *Workspace) {
	fd.Deriv1R(p, s, out.R)
	fd.Deriv1T(p, s, out.T)
	fd.Deriv1P(p, s, out.P)
	h := p.H
	sweep(p, 3, func(j, k int) {
		tr := out.T.Row(j, k)
		pr := out.P.Row(j, k)
		m := p.InvSinT[j]
		for i := h; i < h+p.Nr; i++ {
			tr[i] *= p.InvR[i]
			pr[i] *= p.InvR[i] * m
		}
	})
}

// Div computes the divergence of vector v using the expanded metric form
//
//	div v = dvr/dr + 2 vr/r + (1/r)(dvt/dt + cot(t) vt)
//	      + (1/(r sin t)) dvp/dp.
func Div(p *grid.Patch, v *field.Vector, out *field.Scalar, w *Workspace) {
	dr := w.Get()
	dt := w.Get()
	dp := w.Get()
	defer w.Put(dr, dt, dp)
	fd.Deriv1R(p, v.R, dr)
	fd.Deriv1T(p, v.T, dt)
	fd.Deriv1P(p, v.P, dp)
	h := p.H
	sweep(p, 9, func(j, k int) {
		or := out.Row(j, k)
		vr := v.R.Row(j, k)
		vt := v.T.Row(j, k)
		drr := dr.Row(j, k)
		dtr := dt.Row(j, k)
		dpr := dp.Row(j, k)
		cot := p.CotT[j]
		ist := p.InvSinT[j]
		for i := h; i < h+p.Nr; i++ {
			ir := p.InvR[i]
			or[i] = drr[i] + 2*vr[i]*ir + ir*(dtr[i]+cot*vt[i]) + ir*ist*dpr[i]
		}
	})
}

// Curl computes the curl of vector v:
//
//	(curl v)_r = (1/r)(dvp/dt + cot(t) vp) - (1/(r sin t)) dvt/dp
//	(curl v)_t = (1/(r sin t)) dvr/dp - dvp/dr - vp/r
//	(curl v)_p = dvt/dr + vt/r - (1/r) dvr/dt
func Curl(p *grid.Patch, v *field.Vector, out *field.Vector, w *Workspace) {
	dtvp := w.Get()
	dpvt := w.Get()
	dpvr := w.Get()
	drvp := w.Get()
	drvt := w.Get()
	dtvr := w.Get()
	defer w.Put(dtvp, dpvt, dpvr, drvp, drvt, dtvr)
	fd.Deriv1T(p, v.P, dtvp)
	fd.Deriv1P(p, v.T, dpvt)
	fd.Deriv1P(p, v.R, dpvr)
	fd.Deriv1R(p, v.P, drvp)
	fd.Deriv1R(p, v.T, drvt)
	fd.Deriv1T(p, v.R, dtvr)
	h := p.H
	sweep(p, 13, func(j, k int) {
		orr := out.R.Row(j, k)
		otr := out.T.Row(j, k)
		opr := out.P.Row(j, k)
		vt := v.T.Row(j, k)
		vp := v.P.Row(j, k)
		a := dtvp.Row(j, k)
		b := dpvt.Row(j, k)
		c := dpvr.Row(j, k)
		d := drvp.Row(j, k)
		e := drvt.Row(j, k)
		f := dtvr.Row(j, k)
		cot := p.CotT[j]
		ist := p.InvSinT[j]
		for i := h; i < h+p.Nr; i++ {
			ir := p.InvR[i]
			orr[i] = ir*(a[i]+cot*vp[i]) - ir*ist*b[i]
			otr[i] = ir*ist*c[i] - d[i] - vp[i]*ir
			opr[i] = e[i] + vt[i]*ir - ir*f[i]
		}
	})
}

// LapScalar computes the scalar Laplacian
//
//	lap s = d2s/dr2 + (2/r) ds/dr
//	      + (1/r^2)(d2s/dt2 + cot(t) ds/dt)
//	      + (1/(r^2 sin^2 t)) d2s/dp2.
func LapScalar(p *grid.Patch, s *field.Scalar, out *field.Scalar, w *Workspace) {
	d2r := w.Get()
	d1r := w.Get()
	d2t := w.Get()
	d1t := w.Get()
	d2p := w.Get()
	defer w.Put(d2r, d1r, d2t, d1t, d2p)
	fd.Deriv2R(p, s, d2r)
	fd.Deriv1R(p, s, d1r)
	fd.Deriv2T(p, s, d2t)
	fd.Deriv1T(p, s, d1t)
	fd.Deriv2P(p, s, d2p)
	h := p.H
	sweep(p, 10, func(j, k int) {
		or := out.Row(j, k)
		a := d2r.Row(j, k)
		b := d1r.Row(j, k)
		c := d2t.Row(j, k)
		d := d1t.Row(j, k)
		e := d2p.Row(j, k)
		cot := p.CotT[j]
		ist := p.InvSinT[j]
		for i := h; i < h+p.Nr; i++ {
			ir := p.InvR[i]
			ir2 := p.InvR2[i]
			or[i] = a[i] + 2*ir*b[i] + ir2*(c[i]+cot*d[i]) + ir2*ist*ist*e[i]
		}
	})
}

// LapVector computes the vector Laplacian with the standard curvature
// coupling terms of spherical coordinates:
//
//	(lap v)_r = lap vr - (2/r^2)(vr + dvt/dt + cot(t) vt + (1/sin t) dvp/dp)
//	(lap v)_t = lap vt + (2/r^2) dvr/dt - vt/(r^2 sin^2 t)
//	          - (2 cos t/(r^2 sin^2 t)) dvp/dp
//	(lap v)_p = lap vp + (2/(r^2 sin t)) dvr/dp
//	          + (2 cos t/(r^2 sin^2 t)) dvt/dp - vp/(r^2 sin^2 t)
func LapVector(p *grid.Patch, v *field.Vector, out *field.Vector, w *Workspace) {
	LapScalar(p, v.R, out.R, w)
	LapScalar(p, v.T, out.T, w)
	LapScalar(p, v.P, out.P, w)

	dtvt := w.Get()
	dpvp := w.Get()
	dtvr := w.Get()
	dpvr := w.Get()
	dpvt := w.Get()
	defer w.Put(dtvt, dpvp, dtvr, dpvr, dpvt)
	fd.Deriv1T(p, v.T, dtvt)
	fd.Deriv1P(p, v.P, dpvp)
	fd.Deriv1T(p, v.R, dtvr)
	fd.Deriv1P(p, v.R, dpvr)
	fd.Deriv1P(p, v.T, dpvt)

	h := p.H
	sweep(p, 24, func(j, k int) {
		orr := out.R.Row(j, k)
		otr := out.T.Row(j, k)
		opr := out.P.Row(j, k)
		vr := v.R.Row(j, k)
		vt := v.T.Row(j, k)
		vp := v.P.Row(j, k)
		a := dtvt.Row(j, k)
		b := dpvp.Row(j, k)
		c := dtvr.Row(j, k)
		d := dpvr.Row(j, k)
		e := dpvt.Row(j, k)
		cot := p.CotT[j]
		ist := p.InvSinT[j]
		cost := p.CosT[j]
		ist2 := ist * ist
		for i := h; i < h+p.Nr; i++ {
			ir2 := p.InvR2[i]
			orr[i] -= 2 * ir2 * (vr[i] + a[i] + cot*vt[i] + ist*b[i])
			otr[i] += ir2 * (2*c[i] - ist2*vt[i] - 2*cost*ist2*b[i])
			opr[i] += ir2 * (2*ist*d[i] + 2*cost*ist2*e[i] - ist2*vp[i])
		}
	})
}
