package sphops

import (
	"math"
	"testing"

	"repro/internal/field"
	"repro/internal/grid"
)

func patch(nt int) *grid.Patch {
	return grid.NewPatch(grid.NewSpec(nt, nt), grid.Yin, 1)
}

func fillScalar(p *grid.Patch, f *field.Scalar, fn func(r, t, ph float64) float64) {
	nr, nt, np := p.Padded()
	for k := 0; k < np; k++ {
		for j := 0; j < nt; j++ {
			for i := 0; i < nr; i++ {
				f.Set(i, j, k, fn(p.R[i], p.Theta[j], p.Phi[k]))
			}
		}
	}
}

func fillVector(p *grid.Patch, v *field.Vector, fn func(r, t, ph float64) (vr, vt, vp float64)) {
	nr, nt, np := p.Padded()
	for k := 0; k < np; k++ {
		for j := 0; j < nt; j++ {
			for i := 0; i < nr; i++ {
				vr, vt, vp := fn(p.R[i], p.Theta[j], p.Phi[k])
				v.R.Set(i, j, k, vr)
				v.T.Set(i, j, k, vt)
				v.P.Set(i, j, k, vp)
			}
		}
	}
}

// maxErrScalar measures max abs error over nodes margin in from the patch
// edge in every dimension.
func maxErrScalar(p *grid.Patch, g *field.Scalar, fn func(r, t, ph float64) float64, margin int) float64 {
	h := p.H
	var m float64
	for k := h + margin; k < h+p.Np-margin; k++ {
		for j := h + margin; j < h+p.Nt-margin; j++ {
			for i := h + margin; i < h+p.Nr-margin; i++ {
				e := math.Abs(g.At(i, j, k) - fn(p.R[i], p.Theta[j], p.Phi[k]))
				if e > m {
					m = e
				}
			}
		}
	}
	return m
}

func maxErrVector(p *grid.Patch, g *field.Vector, fn func(r, t, ph float64) (a, b, c float64), margin int) float64 {
	h := p.H
	var m float64
	for k := h + margin; k < h+p.Np-margin; k++ {
		for j := h + margin; j < h+p.Nt-margin; j++ {
			for i := h + margin; i < h+p.Nr-margin; i++ {
				wr, wt, wp := fn(p.R[i], p.Theta[j], p.Phi[k])
				for _, d := range []float64{
					g.R.At(i, j, k) - wr, g.T.At(i, j, k) - wt, g.P.At(i, j, k) - wp,
				} {
					if e := math.Abs(d); e > m {
						m = e
					}
				}
			}
		}
	}
	return m
}

// --- Analytic exactness on low-order fields ---

// TestGradOfX: s = x = r sin(t) cos(p) has gradient xhat, whose spherical
// components are (sin t cos p, cos t cos p, -sin p); the Laplacian is 0.
func TestGradOfX(t *testing.T) {
	p := patch(21)
	w := NewWorkspace(p)
	s := p.NewScalar()
	fillScalar(p, s, func(r, th, ph float64) float64 { return r * math.Sin(th) * math.Cos(ph) })
	g := p.NewVector()
	Grad(p, s, g, w)
	err := maxErrVector(p, g, func(r, th, ph float64) (a, b, c float64) {
		return math.Sin(th) * math.Cos(ph), math.Cos(th) * math.Cos(ph), -math.Sin(ph)
	}, 0)
	if err > 5e-3 {
		t.Errorf("grad x error %g", err)
	}
	lap := p.NewScalar()
	LapScalar(p, s, lap, w)
	if e := maxErrScalar(p, lap, func(r, th, ph float64) float64 { return 0 }, 1); e > 5e-2 {
		t.Errorf("lap x error %g", e)
	}
}

// TestGradLapOfR2: s = r^2 has grad (2r, 0, 0) and Laplacian 6, both exact
// for second-order stencils on the radial quadratic.
func TestGradLapOfR2(t *testing.T) {
	p := patch(17)
	w := NewWorkspace(p)
	s := p.NewScalar()
	fillScalar(p, s, func(r, th, ph float64) float64 { return r * r })
	g := p.NewVector()
	Grad(p, s, g, w)
	if e := maxErrVector(p, g, func(r, th, ph float64) (a, b, c float64) { return 2 * r, 0, 0 }, 0); e > 1e-10 {
		t.Errorf("grad r^2 error %g", e)
	}
	lap := p.NewScalar()
	LapScalar(p, s, lap, w)
	if e := maxErrScalar(p, lap, func(r, th, ph float64) float64 { return 6 }, 0); e > 1e-9 {
		t.Errorf("lap r^2 error %g", e)
	}
}

// TestDivCurlOfPosition: v = r rhat has div 3 and curl 0, exactly.
func TestDivCurlOfPosition(t *testing.T) {
	p := patch(17)
	w := NewWorkspace(p)
	v := p.NewVector()
	fillVector(p, v, func(r, th, ph float64) (a, b, c float64) { return r, 0, 0 })
	d := p.NewScalar()
	Div(p, v, d, w)
	if e := maxErrScalar(p, d, func(r, th, ph float64) float64 { return 3 }, 0); e > 1e-10 {
		t.Errorf("div position error %g", e)
	}
	c := p.NewVector()
	Curl(p, v, c, w)
	if e := maxErrVector(p, c, func(r, th, ph float64) (a, b, cc float64) { return 0, 0, 0 }, 0); e > 1e-10 {
		t.Errorf("curl position error %g", e)
	}
}

// TestRigidRotation: v = zhat x r has spherical components
// (0, 0, r sin t), div 0, curl 2 zhat = (2 cos t, -2 sin t, 0), zero
// strain (S = 0), and vanishing vector Laplacian.
func TestRigidRotation(t *testing.T) {
	p := patch(21)
	w := NewWorkspace(p)
	v := p.NewVector()
	fillVector(p, v, func(r, th, ph float64) (a, b, c float64) { return 0, 0, r * math.Sin(th) })

	d := p.NewScalar()
	Div(p, v, d, w)
	if e := maxErrScalar(p, d, func(r, th, ph float64) float64 { return 0 }, 0); e > 1e-9 {
		t.Errorf("div rigid rotation %g", e)
	}

	c := p.NewVector()
	Curl(p, v, c, w)
	err := maxErrVector(p, c, func(r, th, ph float64) (a, b, cc float64) {
		return 2 * math.Cos(th), -2 * math.Sin(th), 0
	}, 0)
	if err > 5e-3 {
		t.Errorf("curl rigid rotation %g", err)
	}

	s := p.NewScalar()
	StrainSquared(p, v, s, w)
	// S vanishes analytically; numerically it is the square of the
	// truncation error of the angular derivatives.
	if e := maxErrScalar(p, s, func(r, th, ph float64) float64 { return 0 }, 0); e > 1e-5 {
		t.Errorf("strain of rigid rotation %g", e)
	}

	lap := p.NewVector()
	LapVector(p, v, lap, w)
	if e := maxErrVector(p, lap, func(r, th, ph float64) (a, b, cc float64) { return 0, 0, 0 }, 1); e > 5e-2 {
		t.Errorf("vector laplacian of rigid rotation %g", e)
	}
}

// TestCentripetal: for rigid rotation v, div(v v) = (v.grad)v is the
// centripetal acceleration -w^2 varpi varpihat with components
// (-r sin^2 t, -r sin t cos t, 0).
func TestCentripetal(t *testing.T) {
	p := patch(33)
	w := NewWorkspace(p)
	v := p.NewVector()
	fillVector(p, v, func(r, th, ph float64) (a, b, c float64) { return 0, 0, r * math.Sin(th) })
	out := p.NewVector()
	DivTensorVF(p, v, v, out, w)
	err := maxErrVector(p, out, func(r, th, ph float64) (a, b, c float64) {
		st := math.Sin(th)
		return -r * st * st, -r * st * math.Cos(th), 0
	}, 1)
	if err > 2e-2 {
		t.Errorf("centripetal error %g", err)
	}
}

// TestVDotGrad: v = r rhat advecting s = r^2 gives 2 r^2 exactly.
func TestVDotGrad(t *testing.T) {
	p := patch(17)
	w := NewWorkspace(p)
	v := p.NewVector()
	fillVector(p, v, func(r, th, ph float64) (a, b, c float64) { return r, 0, 0 })
	s := p.NewScalar()
	fillScalar(p, s, func(r, th, ph float64) float64 { return r * r })
	out := p.NewScalar()
	VDotGrad(p, v, s, out, w)
	if e := maxErrScalar(p, out, func(r, th, ph float64) float64 { return 2 * r * r }, 0); e > 1e-9 {
		t.Errorf("v.grad error %g", e)
	}
}

// TestStrainOfAzimuthalShear: v = (0, 0, r^2) has
// S = (r^2/2)(1 + cot^2 t).
func TestStrainOfAzimuthalShear(t *testing.T) {
	p := patch(33)
	w := NewWorkspace(p)
	v := p.NewVector()
	fillVector(p, v, func(r, th, ph float64) (a, b, c float64) { return 0, 0, r * r })
	s := p.NewScalar()
	StrainSquared(p, v, s, w)
	err := maxErrScalar(p, s, func(r, th, ph float64) float64 {
		cot := math.Cos(th) / math.Sin(th)
		return r * r / 2 * (1 + cot*cot)
	}, 1)
	if err > 2e-2 {
		t.Errorf("shear strain error %g", err)
	}
}

// --- Discrete vector identities (converge at second order) ---

func smoothScalar(r, th, ph float64) float64 {
	return math.Sin(2*r) * math.Sin(th) * math.Sin(th) * math.Cos(ph)
}

func smoothVector(r, th, ph float64) (a, b, c float64) {
	return r * math.Sin(th) * math.Cos(ph),
		math.Sin(2*r) * math.Cos(th),
		r * r * math.Sin(th) * math.Sin(ph)
}

func curlGradMax(nt int) float64 {
	p := patch(nt)
	w := NewWorkspace(p)
	s := p.NewScalar()
	fillScalar(p, s, smoothScalar)
	g := p.NewVector()
	Grad(p, s, g, w)
	c := p.NewVector()
	Curl(p, g, c, w)
	return maxErrVector(p, c, func(r, th, ph float64) (a, b, cc float64) { return 0, 0, 0 }, 2)
}

func TestCurlGradIsZero(t *testing.T) {
	e1 := curlGradMax(17)
	e2 := curlGradMax(33)
	if rate := math.Log2(e1 / e2); rate < 1.5 {
		t.Errorf("curl(grad) convergence rate %.2f (errors %g -> %g)", rate, e1, e2)
	}
}

func divCurlMax(nt int) float64 {
	p := patch(nt)
	w := NewWorkspace(p)
	v := p.NewVector()
	fillVector(p, v, smoothVector)
	c := p.NewVector()
	Curl(p, v, c, w)
	d := p.NewScalar()
	Div(p, c, d, w)
	return maxErrScalar(p, d, func(r, th, ph float64) float64 { return 0 }, 2)
}

func TestDivCurlIsZero(t *testing.T) {
	e1 := divCurlMax(17)
	e2 := divCurlMax(33)
	if rate := math.Log2(e1 / e2); rate < 1.5 {
		t.Errorf("div(curl) convergence rate %.2f (errors %g -> %g)", rate, e1, e2)
	}
}

// TestLapVectorIdentity: lap v = grad(div v) - curl(curl v); the direct
// component formula must agree with the composed form to truncation
// error, which shrinks at second order. The comparison margin is a fixed
// *physical* fraction of the domain (nt/8 nodes) so that both resolutions
// exclude the same boundary-contaminated zone.
func TestLapVectorIdentity(t *testing.T) {
	errAt := func(nt int) float64 {
		margin := nt / 8
		p := patch(nt)
		w := NewWorkspace(p)
		v := p.NewVector()
		fillVector(p, v, smoothVector)

		direct := p.NewVector()
		LapVector(p, v, direct, w)

		d := p.NewScalar()
		Div(p, v, d, w)
		gd := p.NewVector()
		Grad(p, d, gd, w)
		c := p.NewVector()
		Curl(p, v, c, w)
		cc := p.NewVector()
		Curl(p, c, cc, w)

		h := p.H
		var m float64
		for k := h + margin; k < h+p.Np-margin; k++ {
			for j := h + margin; j < h+p.Nt-margin; j++ {
				for i := h + margin; i < h+p.Nr-margin; i++ {
					for _, dd := range []float64{
						direct.R.At(i, j, k) - (gd.R.At(i, j, k) - cc.R.At(i, j, k)),
						direct.T.At(i, j, k) - (gd.T.At(i, j, k) - cc.T.At(i, j, k)),
						direct.P.At(i, j, k) - (gd.P.At(i, j, k) - cc.P.At(i, j, k)),
					} {
						if e := math.Abs(dd); e > m {
							m = e
						}
					}
				}
			}
		}
		return m
	}
	e1 := errAt(17)
	e2 := errAt(33)
	if rate := math.Log2(e1 / e2); rate < 1.5 {
		t.Errorf("lap identity convergence rate %.2f (errors %g -> %g)", rate, e1, e2)
	}
}

// TestDivTensorProductRule: div(v f) = (div v) f + (v.grad) f for each
// component — verified against a convergence-rate criterion.
func TestDivTensorProductRule(t *testing.T) {
	errAt := func(nt int) float64 {
		margin := nt / 8
		p := patch(nt)
		w := NewWorkspace(p)
		v := p.NewVector()
		f := p.NewVector()
		fillVector(p, v, smoothVector)
		fillVector(p, f, func(r, th, ph float64) (a, b, c float64) {
			return math.Cos(r) * math.Sin(th), r * math.Cos(th) * math.Sin(ph), math.Sin(r)
		})
		got := p.NewVector()
		DivTensorVF(p, v, f, got, w)

		divv := p.NewScalar()
		Div(p, v, divv, w)

		// (v.grad) of a vector field has Christoffel terms; build the
		// expected value from the scalar advection of each component plus
		// the same correction terms DivTensorVF uses.
		adv := p.NewVector()
		for c, fc := range f.Components() {
			VDotGrad(p, v, fc, adv.Components()[c], w)
		}
		h := p.H
		var m float64
		for k := h + margin; k < h+p.Np-margin; k++ {
			for j := h + margin; j < h+p.Nt-margin; j++ {
				cot := p.CotT[j]
				for i := h + margin; i < h+p.Nr-margin; i++ {
					ir := 1 / p.R[i]
					vr, vt, vp := v.R.At(i, j, k), v.T.At(i, j, k), v.P.At(i, j, k)
					fr, ft, fp := f.R.At(i, j, k), f.T.At(i, j, k), f.P.At(i, j, k)
					dv := divv.At(i, j, k)
					wantR := dv*fr + adv.R.At(i, j, k) - (vt*ft+vp*fp)*ir
					wantT := dv*ft + adv.T.At(i, j, k) + (vt*fr-cot*vp*fp)*ir
					wantP := dv*fp + adv.P.At(i, j, k) + (vp*fr+cot*vp*ft)*ir
					for _, dd := range []float64{
						got.R.At(i, j, k) - wantR,
						got.T.At(i, j, k) - wantT,
						got.P.At(i, j, k) - wantP,
					} {
						if e := math.Abs(dd); e > m {
							m = e
						}
					}
					_ = vr
				}
			}
		}
		return m
	}
	e1 := errAt(17)
	e2 := errAt(33)
	if rate := math.Log2(e1 / e2); rate < 1.5 {
		t.Errorf("product rule convergence rate %.2f (errors %g -> %g)", rate, e1, e2)
	}
}

// --- Pointwise algebra ---

func TestCrossAntisymmetric(t *testing.T) {
	p := patch(9)
	a := p.NewVector()
	b := p.NewVector()
	fillVector(p, a, smoothVector)
	fillVector(p, b, func(r, th, ph float64) (x, y, z float64) { return math.Sin(r), th, ph * r })
	ab := p.NewVector()
	ba := p.NewVector()
	Cross(a, b, ab)
	Cross(b, a, ba)
	for i := range ab.R.Data {
		if math.Abs(ab.R.Data[i]+ba.R.Data[i]) > 1e-14 ||
			math.Abs(ab.T.Data[i]+ba.T.Data[i]) > 1e-14 ||
			math.Abs(ab.P.Data[i]+ba.P.Data[i]) > 1e-14 {
			t.Fatal("cross product not antisymmetric")
		}
	}
	// a x a = 0.
	Cross(a, a, ab)
	for i := range ab.R.Data {
		if ab.R.Data[i] != 0 || ab.T.Data[i] != 0 || ab.P.Data[i] != 0 {
			t.Fatal("a x a != 0")
		}
	}
}

func TestCrossOrthogonal(t *testing.T) {
	p := patch(9)
	a := p.NewVector()
	b := p.NewVector()
	fillVector(p, a, smoothVector)
	fillVector(p, b, func(r, th, ph float64) (x, y, z float64) { return th, math.Cos(r), r })
	ab := p.NewVector()
	Cross(a, b, ab)
	for i := range ab.R.Data {
		dotA := ab.R.Data[i]*a.R.Data[i] + ab.T.Data[i]*a.T.Data[i] + ab.P.Data[i]*a.P.Data[i]
		if math.Abs(dotA) > 1e-12 {
			t.Fatalf("cross product not orthogonal to a: %g", dotA)
		}
	}
}

func TestMagSquared(t *testing.T) {
	p := patch(9)
	v := p.NewVector()
	v.R.Fill(3)
	v.T.Fill(4)
	v.P.Fill(12)
	m := p.NewScalar()
	MagSquared(v, m)
	for _, x := range m.Data {
		if x != 169 {
			t.Fatalf("|v|^2 = %v, want 169", x)
		}
	}
}

// TestWorkspaceReuse: repeated operator evaluation must not grow the pool.
func TestWorkspaceReuse(t *testing.T) {
	p := patch(9)
	w := NewWorkspace(p)
	v := p.NewVector()
	fillVector(p, v, smoothVector)
	out := p.NewVector()
	s := p.NewScalar()
	for n := 0; n < 3; n++ {
		Curl(p, v, out, w)
		Div(p, v, s, w)
		LapVector(p, v, out, w)
		StrainSquared(p, v, s, w)
		DivTensorVF(p, v, v, out, w)
	}
	first := w.Allocated()
	for n := 0; n < 5; n++ {
		Curl(p, v, out, w)
		LapVector(p, v, out, w)
		DivTensorVF(p, v, v, out, w)
	}
	if w.Allocated() != first {
		t.Errorf("workspace grew from %d to %d scratch fields", first, w.Allocated())
	}
}
