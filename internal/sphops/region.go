package sphops

import (
	"repro/internal/field"
	"repro/internal/grid"
	"repro/internal/perfcount"
)

// Region-restricted, column-fused variants of the operators in ops.go.
// Where the full-field forms make one derivative sweep per term over the
// whole patch, these compute every derivative row and the metric combine
// for one (j, k) column in a single pass before moving to the next — the
// cache-blocking the fused right-hand side is built on — and touch only
// the columns of the given region, which is what lets a decomposed rank
// evaluate the interior while halo messages are still in flight and
// finish the rim afterwards.
//
// Each column's derivative rows depend only on the input field, never on
// another column's scratch, and the combine statements are copied from
// the full-field forms, so for any region cover the results are bitwise
// identical to the corresponding full-field sweep.

// sweepOn runs fn over every column of reg. Each rectangle's phi extent
// is range-split over the patch worker pool; distinct (j, k) columns own
// disjoint output rows, so the parallel form is bit-identical to the
// serial one. fn must only write rows of its own (j, k).
func sweepOn(p *grid.Patch, reg grid.Region, fn func(j, k int)) {
	for _, rc := range reg {
		if rc.Empty() {
			continue
		}
		rc := rc
		p.Par.For(rc.K1-rc.K0, func(klo, khi int) {
			for k := rc.K0 + klo; k < rc.K0+khi; k++ {
				for j := rc.J0; j < rc.J1; j++ {
					fn(j, k)
				}
			}
		})
	}
}

// countOn charges the aggregate a region evaluation owes the counters:
// flopsPerNode flops on every region node across loopsPerColumn radial
// loops per column, matching what the full-field sweeps charge when the
// region covers the whole patch.
func countOn(p *grid.Patch, reg grid.Region, flopsPerNode, loopsPerColumn int) {
	cols := int64(reg.Columns())
	n := cols * int64(p.Nr)
	lpc := int64(loopsPerColumn)
	perfcount.AddFlops(n * int64(flopsPerNode))
	perfcount.AddVectorLoops(cols*lpc, n*lpc)
}

// DivOn computes Div over the columns of reg only (same metric form,
// bitwise-identical values). The angular derivative rows of a column
// are built by two stencil passes and the radial stencil is formed
// inside the combine itself, with the one-sided radial closures
// re-deriving the two global-boundary entries; every stencil and
// combine statement matches the full-field sweep, so the values are
// exact.
func DivOn(p *grid.Patch, reg grid.Region, v *field.Vector, out *field.Scalar, w *Workspace) {
	dt := w.Get()
	dp := w.Get()
	defer w.Put(dt, dp)
	h := p.H
	n := p.Nr
	cr := 1 / (2 * p.Dr)
	ct := 1 / (2 * p.Dt)
	cp := 1 / (2 * p.Dp)
	loT, hiT := p.GlobalEdge(2), p.GlobalEdge(3)
	loP, hiP := p.GlobalEdge(4), p.GlobalEdge(5)
	sweepOn(p, reg, func(j, k int) {
		dtr := dt.Row(j, k)
		dpr := dp.Row(j, k)

		// Theta pass: d/dtheta of v_theta.
		{
			bw := dtr[h:][:n]
			switch {
			case loT && j == h:
				t0, t1, t2 := v.T.Row(j, k)[h:][:n], v.T.Row(j+1, k)[h:][:n], v.T.Row(j+2, k)[h:][:n]
				for i := 0; i < n; i++ {
					bw[i] = ct * (-3*t0[i] + 4*t1[i] - t2[i])
				}
			case hiT && j == h+p.Nt-1:
				t0, t1, t2 := v.T.Row(j, k)[h:][:n], v.T.Row(j-1, k)[h:][:n], v.T.Row(j-2, k)[h:][:n]
				for i := 0; i < n; i++ {
					bw[i] = ct * (3*t0[i] - 4*t1[i] + t2[i])
				}
			default:
				tP, tM := v.T.Row(j+1, k)[h:][:n], v.T.Row(j-1, k)[h:][:n]
				for i := 0; i < n; i++ {
					bw[i] = ct * (tP[i] - tM[i])
				}
			}
		}

		// Phi pass: d/dphi of v_phi.
		{
			cw := dpr[h:][:n]
			switch {
			case loP && k == h:
				p0, p1, p2 := v.P.Row(j, k)[h:][:n], v.P.Row(j, k+1)[h:][:n], v.P.Row(j, k+2)[h:][:n]
				for i := 0; i < n; i++ {
					cw[i] = cp * (-3*p0[i] + 4*p1[i] - p2[i])
				}
			case hiP && k == h+p.Np-1:
				p0, p1, p2 := v.P.Row(j, k)[h:][:n], v.P.Row(j, k-1)[h:][:n], v.P.Row(j, k-2)[h:][:n]
				for i := 0; i < n; i++ {
					cw[i] = cp * (3*p0[i] - 4*p1[i] + p2[i])
				}
			default:
				pP, pM := v.P.Row(j, k+1)[h:][:n], v.P.Row(j, k-1)[h:][:n]
				for i := 0; i < n; i++ {
					cw[i] = cp * (pP[i] - pM[i])
				}
			}
		}

		// Combine, with the radial stencil formed in place.
		vrR := v.R.Row(j, k)
		orR := out.Row(j, k)
		or := orR[h:][:n]
		vr := vrR[h:][:n]
		vrp, vrm := vrR[h+1:][:n], vrR[h-1:][:n]
		vt := v.T.Row(j, k)[h:][:n]
		invr := p.InvR[h:][:n]
		db, dc := dtr[h:][:n], dpr[h:][:n]
		cot := p.CotT[j]
		ist := p.InvSinT[j]
		for i := 0; i < n; i++ {
			ir := invr[i]
			or[i] = (cr * (vrp[i] - vrm[i])) + 2*vr[i]*ir + ir*(db[i]+cot*vt[i]) + ir*ist*dc[i]
		}
		if p.GlobalEdge(0) {
			i := h
			ir := p.InvR[i]
			orR[i] = (cr * (-3*vrR[i] + 4*vrR[i+1] - vrR[i+2])) + 2*vrR[i]*ir +
				ir*(dtr[i]+cot*v.T.Row(j, k)[i]) + ir*ist*dpr[i]
		}
		if p.GlobalEdge(1) {
			i := h + n - 1
			ir := p.InvR[i]
			orR[i] = (cr * (3*vrR[i] - 4*vrR[i-1] + vrR[i-2])) + 2*vrR[i]*ir +
				ir*(dtr[i]+cot*v.T.Row(j, k)[i]) + ir*ist*dpr[i]
		}
	})
	countOn(p, reg, 18, 4)
}

// CurlOn computes Curl over the columns of reg only (same metric form,
// bitwise-identical values). The six derivative rows of a column are
// built in one merged pass per direction — two stencils sharing each
// pass's input rows — before the combine; every stencil and combine
// statement matches the full-field sweep, so the values are exact.
func CurlOn(p *grid.Patch, reg grid.Region, v *field.Vector, out *field.Vector, w *Workspace) {
	dtvp := w.Get()
	dpvt := w.Get()
	dpvr := w.Get()
	drvp := w.Get()
	drvt := w.Get()
	dtvr := w.Get()
	defer w.Put(dtvp, dpvt, dpvr, drvp, drvt, dtvr)
	h := p.H
	n := p.Nr
	cr := 1 / (2 * p.Dr)
	ct := 1 / (2 * p.Dt)
	cp := 1 / (2 * p.Dp)
	loT, hiT := p.GlobalEdge(2), p.GlobalEdge(3)
	loP, hiP := p.GlobalEdge(4), p.GlobalEdge(5)
	sweepOn(p, reg, func(j, k int) {
		a := dtvp.Row(j, k)
		b := dpvt.Row(j, k)
		c := dpvr.Row(j, k)
		d := drvp.Row(j, k)
		e := drvt.Row(j, k)
		f := dtvr.Row(j, k)
		vtR := v.T.Row(j, k)
		vpR := v.P.Row(j, k)

		// Radial pass: d/dr of v_theta and v_phi.
		{
			ew, dw := e[h:][:n], d[h:][:n]
			tp, tm := vtR[h+1:][:n], vtR[h-1:][:n]
			pp, pm := vpR[h+1:][:n], vpR[h-1:][:n]
			for i := 0; i < n; i++ {
				ew[i] = cr * (tp[i] - tm[i])
				dw[i] = cr * (pp[i] - pm[i])
			}
			if p.GlobalEdge(0) {
				i := h
				e[i] = cr * (-3*vtR[i] + 4*vtR[i+1] - vtR[i+2])
				d[i] = cr * (-3*vpR[i] + 4*vpR[i+1] - vpR[i+2])
			}
			if p.GlobalEdge(1) {
				i := h + n - 1
				e[i] = cr * (3*vtR[i] - 4*vtR[i-1] + vtR[i-2])
				d[i] = cr * (3*vpR[i] - 4*vpR[i-1] + vpR[i-2])
			}
		}

		// Theta pass: d/dtheta of v_phi and v_r.
		{
			aw, fw := a[h:][:n], f[h:][:n]
			switch {
			case loT && j == h:
				p0, p1, p2 := v.P.Row(j, k)[h:][:n], v.P.Row(j+1, k)[h:][:n], v.P.Row(j+2, k)[h:][:n]
				r0, r1, r2 := v.R.Row(j, k)[h:][:n], v.R.Row(j+1, k)[h:][:n], v.R.Row(j+2, k)[h:][:n]
				for i := 0; i < n; i++ {
					aw[i] = ct * (-3*p0[i] + 4*p1[i] - p2[i])
					fw[i] = ct * (-3*r0[i] + 4*r1[i] - r2[i])
				}
			case hiT && j == h+p.Nt-1:
				p0, p1, p2 := v.P.Row(j, k)[h:][:n], v.P.Row(j-1, k)[h:][:n], v.P.Row(j-2, k)[h:][:n]
				r0, r1, r2 := v.R.Row(j, k)[h:][:n], v.R.Row(j-1, k)[h:][:n], v.R.Row(j-2, k)[h:][:n]
				for i := 0; i < n; i++ {
					aw[i] = ct * (3*p0[i] - 4*p1[i] + p2[i])
					fw[i] = ct * (3*r0[i] - 4*r1[i] + r2[i])
				}
			default:
				pP, pM := v.P.Row(j+1, k)[h:][:n], v.P.Row(j-1, k)[h:][:n]
				rP, rM := v.R.Row(j+1, k)[h:][:n], v.R.Row(j-1, k)[h:][:n]
				for i := 0; i < n; i++ {
					aw[i] = ct * (pP[i] - pM[i])
					fw[i] = ct * (rP[i] - rM[i])
				}
			}
		}

		// Phi pass: d/dphi of v_theta and v_r.
		{
			bw, cw := b[h:][:n], c[h:][:n]
			switch {
			case loP && k == h:
				t0, t1, t2 := v.T.Row(j, k)[h:][:n], v.T.Row(j, k+1)[h:][:n], v.T.Row(j, k+2)[h:][:n]
				r0, r1, r2 := v.R.Row(j, k)[h:][:n], v.R.Row(j, k+1)[h:][:n], v.R.Row(j, k+2)[h:][:n]
				for i := 0; i < n; i++ {
					bw[i] = cp * (-3*t0[i] + 4*t1[i] - t2[i])
					cw[i] = cp * (-3*r0[i] + 4*r1[i] - r2[i])
				}
			case hiP && k == h+p.Np-1:
				t0, t1, t2 := v.T.Row(j, k)[h:][:n], v.T.Row(j, k-1)[h:][:n], v.T.Row(j, k-2)[h:][:n]
				r0, r1, r2 := v.R.Row(j, k)[h:][:n], v.R.Row(j, k-1)[h:][:n], v.R.Row(j, k-2)[h:][:n]
				for i := 0; i < n; i++ {
					bw[i] = cp * (3*t0[i] - 4*t1[i] + t2[i])
					cw[i] = cp * (3*r0[i] - 4*r1[i] + r2[i])
				}
			default:
				tP, tM := v.T.Row(j, k+1)[h:][:n], v.T.Row(j, k-1)[h:][:n]
				rP, rM := v.R.Row(j, k+1)[h:][:n], v.R.Row(j, k-1)[h:][:n]
				for i := 0; i < n; i++ {
					bw[i] = cp * (tP[i] - tM[i])
					cw[i] = cp * (rP[i] - rM[i])
				}
			}
		}

		orr := out.R.Row(j, k)[h:][:n]
		otr := out.T.Row(j, k)[h:][:n]
		opr := out.P.Row(j, k)[h:][:n]
		vt := vtR[h:][:n]
		vp := vpR[h:][:n]
		invr := p.InvR[h:][:n]
		aw, bw, cw := a[h:][:n], b[h:][:n], c[h:][:n]
		dw, ew, fw := d[h:][:n], e[h:][:n], f[h:][:n]
		cot := p.CotT[j]
		ist := p.InvSinT[j]
		for i := 0; i < n; i++ {
			ir := invr[i]
			orr[i] = ir*(aw[i]+cot*vp[i]) - ir*ist*bw[i]
			otr[i] = ir*ist*cw[i] - dw[i] - vp[i]*ir
			opr[i] = ew[i] + vt[i]*ir - ir*fw[i]
		}
	})
	countOn(p, reg, 31, 7)
}
