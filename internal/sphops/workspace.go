// Package sphops implements the differential operators of vector calculus
// in spherical polar coordinates — gradient, divergence, curl, scalar and
// vector Laplacian, momentum-flux (tensor) divergence, advection, and the
// viscous dissipation function — discretized with the finite differences
// of package fd on Yin-Yang component patches.
//
// Because a component grid is nothing but a part of the latitude-longitude
// grid (paper, section II), the analytic metric forms of these operators
// in spherical coordinates apply verbatim on both the Yin and the Yang
// panel; the same routines serve both.
package sphops

import (
	"repro/internal/field"
	"repro/internal/grid"
	"repro/internal/perfcount"
)

// Workspace pools scratch fields for operator evaluation so repeated
// right-hand-side evaluations do not allocate.
type Workspace struct {
	patch *grid.Patch
	free  []*field.Scalar
	total int
}

// NewWorkspace creates a scratch pool for fields shaped like p.
func NewWorkspace(p *grid.Patch) *Workspace {
	return &Workspace{patch: p}
}

// Get returns a scratch scalar (contents unspecified).
func (w *Workspace) Get() *field.Scalar {
	if n := len(w.free); n > 0 {
		f := w.free[n-1]
		w.free = w.free[:n-1]
		return f
	}
	w.total++
	return w.patch.NewScalar()
}

// Put returns scratch scalars to the pool.
func (w *Workspace) Put(fs ...*field.Scalar) {
	w.free = append(w.free, fs...)
}

// Allocated reports how many scratch fields the pool ever created; useful
// for asserting that steady-state stepping does not grow the pool.
func (w *Workspace) Allocated() int { return w.total }

// countN charges n nodes across rows vector loops with fl flops per node.
func countN(n, rows, fl int64) {
	perfcount.AddFlops(n * fl)
	perfcount.AddVectorLoops(rows, n)
}

// sweep runs fn over every interior (j, k) pair and charges the counters
// with flopsPerNode flops for each interior node. fn must loop its inner
// radial index over [p.H, p.H+p.Nr). The phi range is split over the
// patch worker pool; distinct (j, k) pairs own disjoint output rows, so
// the parallel sweep is bit-identical to the serial one. fn must only
// write rows of its own (j, k).
func sweep(p *grid.Patch, flopsPerNode int, fn func(j, k int)) {
	h := p.H
	p.Par.For(p.Np, func(klo, khi int) {
		for k := h + klo; k < h+khi; k++ {
			for j := h; j < h+p.Nt; j++ {
				fn(j, k)
			}
		}
	})
	n := int64(p.Nr) * int64(p.Nt) * int64(p.Np)
	perfcount.AddFlops(n * int64(flopsPerNode))
	perfcount.AddVectorLoops(int64(p.Nt)*int64(p.Np), n)
}
