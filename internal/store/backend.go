package store

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
)

// Backend is the pluggable storage surface. Names are slash-separated
// relative paths ("objects/ab/abc...", "ledger/000000001", "refs/...").
// Put must be atomic and durable: a reader never observes a partially
// written name, and a completed Put survives a crash. The local
// directory backend is the only implementation today; the interface is
// shaped so an S3-compatible one (conditional put + list-after-write)
// can slot in later.
type Backend interface {
	// Put atomically creates or replaces the named blob.
	Put(name string, data []byte) error
	// Get returns the blob's bytes; a missing name satisfies
	// errors.Is(err, fs.ErrNotExist).
	Get(name string) ([]byte, error)
	// List returns all committed names under prefix, sorted.
	// In-flight temp files are excluded.
	List(prefix string) ([]string, error)
	// Remove deletes the named blob; removing a missing name is an
	// error (callers decide deletion, the backend must not mask a
	// double delete).
	Remove(name string) error
	// Temps lists leftover temp files from crashed writers.
	Temps() ([]string, error)
	// SweepTemps removes leftover temp files and returns their names.
	SweepTemps() ([]string, error)
}

// tmpMarker tags in-flight writes; any name containing it is invisible
// to List and fair game for SweepTemps.
const tmpMarker = ".tmp-"

// DiskFullError is the typed error for an exhausted volume. It wraps
// ENOSPC so errors.Is(err, syscall.ENOSPC) still holds, and it is what
// a campaign must surface instead of retrying a permanently-full disk
// through the dt-backoff ladder.
type DiskFullError struct {
	Path string
	Err  error
}

func (e *DiskFullError) Error() string {
	return fmt.Sprintf("store: disk full writing %s: %v", e.Path, e.Err)
}

func (e *DiskFullError) Unwrap() error { return e.Err }

// CrashError is the injected-crash signal from a FaultPlan: the write
// in progress stopped as if the process had died at that point. Real
// code never produces it; the chaos harness asserts campaigns surface
// it (or its effects) cleanly.
type CrashError struct {
	Point string // fault kind, e.g. "torn-write", "crash-before-rename"
	Path  string
}

func (e *CrashError) Error() string {
	return fmt.Sprintf("store: injected crash (%s) writing %s", e.Point, e.Path)
}

// DirBackend stores blobs under a root directory with the atomic
// temp → fsync → rename → dir-fsync commit path, optionally filtered
// through a seeded FaultPlan for crash-consistency testing.
type DirBackend struct {
	root   string
	faults *FaultPlan
	ops    int // Put counter, matched against FaultPlan ops
}

// NewDirBackend opens (creating if needed) a local directory backend.
func NewDirBackend(root string) (*DirBackend, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating backend root: %w", err)
	}
	return &DirBackend{root: root}, nil
}

// Root returns the backing directory.
func (b *DirBackend) Root() string { return b.root }

// SetFaults installs (or clears, with nil) the seeded fault plan.
// Subsequent Puts count as ops 0,1,2,… for Op matching.
func (b *DirBackend) SetFaults(p *FaultPlan) {
	b.faults = p
	b.ops = 0
}

// checkName rejects names that would escape the root.
func checkName(name string) error {
	if name == "" || strings.HasPrefix(name, "/") || strings.Contains(name, "..") {
		return fmt.Errorf("store: invalid blob name %q", name)
	}
	return nil
}

// wrapENOSPC converts a real out-of-space failure into the typed error.
func wrapENOSPC(path string, err error) error {
	if errors.Is(err, syscall.ENOSPC) {
		return &DiskFullError{Path: path, Err: err}
	}
	return err
}

// Put commits data under name via the atomic path. With a fault plan
// installed, each step offers the plan a chance to misbehave the way a
// real disk or a crash would: short write, flipped bit after commit,
// ENOSPC, or death before/after the rename.
func (b *DirBackend) Put(name string, data []byte) error {
	if err := checkName(name); err != nil {
		return err
	}
	op := b.ops
	b.ops++
	var f *Fault
	if b.faults != nil {
		f = b.faults.take(op, name)
	}

	path := filepath.Join(b.root, filepath.FromSlash(name))
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return wrapENOSPC(dir, err)
	}

	if f != nil && f.Kind == FaultENOSPC {
		return &DiskFullError{Path: path, Err: syscall.ENOSPC}
	}

	// Temp in the same directory so the rename cannot cross devices.
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+tmpMarker+"*")
	if err != nil {
		return wrapENOSPC(dir, err)
	}
	tmpName := tmp.Name()

	if f != nil && f.Kind == FaultTornWrite {
		// A short write then death: part of the payload reaches the
		// temp file, the rename never happens, the orphan stays.
		n := f.Byte
		if n < 0 || n > len(data) {
			n = len(data) / 2
		}
		tmp.Write(data[:n])
		tmp.Close()
		return &CrashError{Point: string(FaultTornWrite), Path: path}
	}

	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return wrapENOSPC(tmpName, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return wrapENOSPC(tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return wrapENOSPC(tmpName, err)
	}

	if f != nil && f.Kind == FaultCrashBeforeRename {
		// Death after the data is durable in the temp but before the
		// commit point: the name never appears, the orphan stays.
		return &CrashError{Point: string(FaultCrashBeforeRename), Path: path}
	}

	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return wrapENOSPC(path, err)
	}

	if f != nil && f.Kind == FaultCrashAfterRename {
		// Death after the commit point but before the directory sync:
		// the blob is present and whole, only the dir-fsync was lost.
		return &CrashError{Point: string(FaultCrashAfterRename), Path: path}
	}

	if err := syncDir(dir); err != nil {
		return err
	}

	if f != nil && f.Kind == FaultBitFlip {
		// Silent bit rot: the Put succeeds, the media lies later.
		flipBit(path, f.Byte)
	}
	return nil
}

// flipBit XORs one bit of the committed file in place — the injected
// analogue of media decay. Best-effort: rot that fails to happen just
// means the scenario exercised less.
func flipBit(path string, byteOff int) {
	data, err := os.ReadFile(path)
	if err != nil || len(data) == 0 {
		return
	}
	off := byteOff
	if off < 0 || off >= len(data) {
		off = len(data) / 2
	}
	data[off] ^= 0x40
	os.WriteFile(path, data, 0o644) //yyvet:ignore atomic-artifact fault injection deliberately corrupts in place; atomicity would defeat it
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

func (b *DirBackend) Get(name string) ([]byte, error) {
	if err := checkName(name); err != nil {
		return nil, err
	}
	return os.ReadFile(filepath.Join(b.root, filepath.FromSlash(name)))
}

func (b *DirBackend) List(prefix string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(b.root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		rel, err := filepath.Rel(b.root, path)
		if err != nil {
			return err
		}
		name := filepath.ToSlash(rel)
		if strings.Contains(name, tmpMarker) {
			return nil
		}
		if strings.HasPrefix(name, prefix) {
			out = append(out, name)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}

func (b *DirBackend) Remove(name string) error {
	if err := checkName(name); err != nil {
		return err
	}
	return os.Remove(filepath.Join(b.root, filepath.FromSlash(name)))
}

func (b *DirBackend) Temps() ([]string, error) {
	var out []string
	err := filepath.WalkDir(b.root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		rel, err := filepath.Rel(b.root, path)
		if err != nil {
			return err
		}
		name := filepath.ToSlash(rel)
		if strings.Contains(name, tmpMarker) {
			out = append(out, name)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}

func (b *DirBackend) SweepTemps() ([]string, error) {
	temps, err := b.Temps()
	if err != nil {
		return nil, err
	}
	for _, name := range temps {
		if err := os.Remove(filepath.Join(b.root, filepath.FromSlash(name))); err != nil {
			return nil, err
		}
	}
	return temps, nil
}

// WriteFileAtomic is the exported one-shot form of the backend's commit
// path — temp in the same dir, write, fsync, rename, dir-fsync — for
// call sites that need a durable standalone file (postmortems, reports)
// rather than a store blob.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+tmpMarker+"*")
	if err != nil {
		return wrapENOSPC(dir, err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return wrapENOSPC(tmpName, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return wrapENOSPC(tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return wrapENOSPC(tmpName, err)
	}
	if err := os.Chmod(tmpName, perm); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return wrapENOSPC(path, err)
	}
	return syncDir(dir)
}
