package store

// Seeded filesystem fault injection — the storage analogue of
// mpi.FaultPlan. A FaultPlan is attached to a DirBackend (SetFaults)
// and matched against the backend's Put counter: the op'th Put fires
// the fault planned for op. The chaos harness generates plans from a
// seed, runs a campaign through the faulted store, and then asserts
// that Verify detects every fired corruption and that Scrub plus a
// deterministic rerun restore a byte-identical state.

// FaultKind names one way a write can go wrong.
type FaultKind string

const (
	// FaultTornWrite writes a prefix of the payload to the temp file
	// and dies: no rename, an orphan temp, a crash error surfaced.
	FaultTornWrite FaultKind = "torn-write"
	// FaultBitFlip lets the Put succeed, then flips one bit of the
	// committed object — silent media rot that only content
	// verification can see.
	FaultBitFlip FaultKind = "bit-flip"
	// FaultENOSPC fails the Put with a typed *DiskFullError before
	// any bytes are written.
	FaultENOSPC FaultKind = "enospc"
	// FaultCrashBeforeRename dies after the temp is durable but
	// before the commit rename: an orphan temp, no visible blob.
	FaultCrashBeforeRename FaultKind = "crash-before-rename"
	// FaultCrashAfterRename dies after the commit rename but before
	// the directory fsync: the blob is whole and visible.
	FaultCrashAfterRename FaultKind = "crash-after-rename"
)

// Fault is one planned misbehavior.
type Fault struct {
	// Op is the backend Put counter value this fault fires on;
	// -1 fires on every Put (a persistent fault, e.g. a full disk
	// that stays full).
	Op int
	// Kind selects the misbehavior.
	Kind FaultKind
	// Byte positions the damage for torn-write (prefix length) and
	// bit-flip (offset); values out of range clamp to mid-payload.
	Byte int
}

// FiredFault records a fault that actually triggered, for detection
// accounting: the chaos harness demands a Verify finding for every
// fired silent corruption.
type FiredFault struct {
	Op   int
	Kind FaultKind
	Name string // the blob name the faulted Put targeted
}

// FaultPlan is a deterministic schedule of storage faults.
type FaultPlan struct {
	faults []Fault
	fired  []FiredFault
}

// NewFaultPlan builds a plan from a fault schedule.
func NewFaultPlan(faults []Fault) *FaultPlan {
	return &FaultPlan{faults: faults}
}

// take returns the fault planned for op, consuming one-shot faults
// (persistent Op==-1 faults never deplete) and recording the firing.
// Called by the backend; not safe for concurrent Puts, which matches
// the single-writer campaign model the plans are used under.
func (p *FaultPlan) take(op int, name string) *Fault {
	for i := range p.faults {
		f := &p.faults[i]
		if f.Op == op || f.Op == -1 {
			p.fired = append(p.fired, FiredFault{Op: op, Kind: f.Kind, Name: name})
			if f.Op != -1 {
				// Consume: shift the tail down over the fired fault.
				p.faults = append(p.faults[:i], p.faults[i+1:]...)
			}
			return &Fault{Op: op, Kind: f.Kind, Byte: f.Byte}
		}
	}
	return nil
}

// Fired returns the faults that have triggered so far, in firing order.
func (p *FaultPlan) Fired() []FiredFault { return p.fired }
