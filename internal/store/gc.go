package store

// Garbage collection: a mark-and-sweep over content-addressed objects.
// The mark set is every hash any ledger entry pins plus every hash any
// ref points at; everything else under objects/ is garbage. The safety
// property — GC never collects a ledger-reachable object — is enforced
// structurally: the mark phase must read the *entire* ledger and ref
// space successfully before a single object is removed. Any unreadable
// or undecodable entry aborts the sweep with an error, because a
// ledger we cannot fully read is a reachability set we cannot bound.

import (
	"fmt"
)

// GCReport summarizes a sweep.
type GCReport struct {
	// Marked is the number of distinct reachable hashes.
	Marked int `json:"marked"`
	// Swept are the unreachable objects removed.
	Swept []Hash `json:"swept,omitempty"`
	// Kept is the number of reachable objects left in place.
	Kept int `json:"kept"`
}

func (r *GCReport) String() string {
	return fmt.Sprintf("store gc: %d reachable, %d kept, %d swept", r.Marked, r.Kept, len(r.Swept))
}

// GC removes every object unreachable from the ledger and the refs.
// It refuses to run — returning an error with nothing removed — if any
// part of the reachability set cannot be read, so a damaged store must
// be scrubbed before it can be collected.
func (s *Store) GC() (*GCReport, error) {
	mark := map[Hash]struct{}{}

	entries, err := s.Entries()
	if err != nil {
		return nil, fmt.Errorf("store: gc refusing to sweep, ledger unreadable: %w", err)
	}
	for _, m := range entries {
		for _, a := range m.Artifacts {
			mark[a.Hash] = struct{}{}
		}
	}

	refs, err := s.Refs("")
	if err != nil {
		return nil, fmt.Errorf("store: gc refusing to sweep, refs unlistable: %w", err)
	}
	for _, r := range refs {
		if r.Err != nil {
			return nil, fmt.Errorf("store: gc refusing to sweep, ref %s unreadable: %w", r.Name, r.Err)
		}
		mark[r.Hash] = struct{}{}
	}

	names, err := s.primary.List("objects/")
	if err != nil {
		return nil, fmt.Errorf("store: gc listing objects: %w", err)
	}
	rep := &GCReport{Marked: len(mark)}
	for _, name := range names {
		h, ok := parseObjectName(name)
		if !ok {
			return nil, fmt.Errorf("store: gc refusing to sweep, alien object %q", name)
		}
		if _, reachable := mark[h]; reachable {
			rep.Kept++
			continue
		}
		if err := s.primary.Remove(name); err != nil {
			return nil, fmt.Errorf("store: gc removing %s: %w", name, err)
		}
		s.mu.Lock()
		delete(s.index, h)
		s.mu.Unlock()
		rep.Swept = append(rep.Swept, h)
	}
	return rep, nil
}
