package store

// The run ledger: an append-only, hash-chained sequence of manifest
// entries. Every campaign segment commit appends one Manifest naming
// the artifacts it produced (by content address), the recovery
// decisions taken to reach it, and a digest of the event log. Each
// entry's Prev is the sha256 of the previous entry's stored bytes and
// its Root is the Merkle root over its artifact hashes, so the whole
// history — and therefore any past "sha256-identical to golden"
// claim — is verifiable offline from the store alone: tamper with any
// byte of any entry or any referenced blob and Verify localizes it.

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

const ledgerPrefix = "ledger/"

// anchorName is the chain anchor: after every Append the current chain
// head (the sha256 of the newest entry's stored bytes) is written
// here. A hash chain pins each entry only through the *next* entry's
// Prev, which leaves the tail entry unpinned; the anchor closes that
// gap, so silent rot of the newest manifest is detectable too. A crash
// between the entry commit and the anchor update leaves the anchor
// lagging exactly one entry — Verify reports that window as
// informational, anything else as damage.
const anchorName = "anchor/HEAD"

// entryName formats a ledger sequence number as its backend name; the
// fixed width keeps lexical order equal to numeric order for List.
func entryName(seq int) string {
	return fmt.Sprintf("%s%09d", ledgerPrefix, seq)
}

func parseEntryName(name string) (int, bool) {
	rest, ok := strings.CutPrefix(name, ledgerPrefix)
	if !ok || len(rest) != 9 {
		return 0, false
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// Artifact is one named output pinned by a manifest entry.
type Artifact struct {
	// Name is the human-facing identity ("ckpt-000000004", "postmortem").
	Name string `json:"name"`
	// Role classifies it ("checkpoint", "postmortem", "report", ...).
	Role string `json:"role"`
	// Hash is the content address of the blob.
	Hash Hash `json:"hash"`
	// Size is the blob length in bytes, a cheap first-line check.
	Size int64 `json:"size"`
}

// Manifest is one ledger entry: what a campaign segment committed and
// how it got there.
type Manifest struct {
	// Seq is the entry's position in the chain; filled by Append.
	Seq int `json:"seq"`
	// Prev is the sha256 of the previous entry's stored bytes (zero
	// for the first entry); filled by Append.
	Prev Hash `json:"prev"`
	// Root is the Merkle root over the artifact hashes; filled by
	// Append.
	Root Hash `json:"root"`
	// Run identifies the campaign this entry belongs to.
	Run string `json:"run"`
	// Step is the solver step the segment committed at.
	Step int `json:"step"`
	// Note is free-form context ("origin", "segment", "postmortem").
	Note string `json:"note,omitempty"`
	// Artifacts are the outputs this entry pins.
	Artifacts []Artifact `json:"artifacts"`
	// EventDigest is the sha256 of the campaign event log at commit
	// time (zero when no event log is attached).
	EventDigest Hash `json:"event_digest,omitempty"`
	// Recoveries lists the recovery decisions taken since the
	// previous entry ("rank-replace@12", "rollback@8", ...).
	Recoveries []string `json:"recoveries,omitempty"`
}

// Append fills the chain fields of m (Seq, Prev, Root), stores it as
// the next ledger entry, and returns the new chain head (the sha256 of
// the entry's stored bytes). The ledger entry itself goes through the
// same atomic backend path as blobs.
func (s *Store) Append(m Manifest) (Hash, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m.Seq = s.seq
	m.Prev = s.head
	hashes := make([]Hash, len(m.Artifacts))
	for i, a := range m.Artifacts {
		hashes[i] = a.Hash
	}
	m.Root = MerkleRoot(hashes)
	raw, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return Hash{}, fmt.Errorf("store: encoding ledger entry %d: %w", m.Seq, err)
	}
	raw = append(raw, '\n')
	if err := s.primary.Put(entryName(m.Seq), raw); err != nil {
		return Hash{}, err
	}
	s.seq++
	s.head = HashOf(raw)
	// Anchor the new head. The entry itself is already committed: a
	// failure here is surfaced (the caller's commit aborts) but leaves
	// only a one-entry-stale anchor, which the next successful Append
	// repairs and Verify tolerates as informational.
	if err := s.primary.Put(anchorName, []byte(s.head.String()+"\n")); err != nil {
		return Hash{}, fmt.Errorf("store: anchoring ledger head: %w", err)
	}
	return s.head, nil
}

// Head returns the current chain head and the number of entries.
func (s *Store) Head() (Hash, int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.head, s.seq
}

// Entries decodes the full ledger in sequence order. Decode failures
// abort — a damaged ledger is a Verify/Scrub matter, not something to
// silently skip here.
func (s *Store) Entries() ([]Manifest, error) {
	names, err := s.primary.List(ledgerPrefix)
	if err != nil {
		return nil, err
	}
	out := make([]Manifest, 0, len(names))
	for _, name := range names {
		raw, err := s.primary.Get(name)
		if err != nil {
			return nil, fmt.Errorf("store: reading ledger entry %s: %w", name, err)
		}
		var m Manifest
		if err := json.Unmarshal(raw, &m); err != nil {
			return nil, fmt.Errorf("store: decoding ledger entry %s: %w", name, err)
		}
		out = append(out, m)
	}
	return out, nil
}

// Merkle tree with domain separation between leaves and interior nodes
// (the classic second-preimage defence): leaf = H(0x00 || hash),
// interior = H(0x01 || left || right). An odd node is paired with
// itself. The root over no artifacts is the zero hash.

func merkleLeaf(h Hash) Hash {
	var buf [1 + len(h)]byte
	buf[0] = 0x00
	copy(buf[1:], h[:])
	return HashOf(buf[:])
}

func merkleNode(l, r Hash) Hash {
	var buf [1 + 2*len(l)]byte
	buf[0] = 0x01
	copy(buf[1:], l[:])
	copy(buf[1+len(l):], r[:])
	return HashOf(buf[:])
}

// MerkleRoot computes the Merkle root over artifact content hashes.
func MerkleRoot(hashes []Hash) Hash {
	if len(hashes) == 0 {
		return Hash{}
	}
	level := make([]Hash, len(hashes))
	for i, h := range hashes {
		level[i] = merkleLeaf(h)
	}
	for len(level) > 1 {
		next := level[: 0 : len(level)/2+1]
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, merkleNode(level[i], level[i+1]))
			} else {
				next = append(next, merkleNode(level[i], level[i]))
			}
		}
		level = next
	}
	return level[0]
}

// MerkleProof returns the sibling path proving hashes[i] is under
// MerkleRoot(hashes), for offline spot-checks of a single artifact
// without re-reading every blob the entry pins.
func MerkleProof(hashes []Hash, i int) ([]Hash, error) {
	if i < 0 || i >= len(hashes) {
		return nil, fmt.Errorf("store: merkle proof index %d out of range [0,%d)", i, len(hashes))
	}
	level := make([]Hash, len(hashes))
	for j, h := range hashes {
		level[j] = merkleLeaf(h)
	}
	var proof []Hash
	for len(level) > 1 {
		sib := i ^ 1
		if sib >= len(level) {
			sib = i // odd node pairs with itself
		}
		proof = append(proof, level[sib])
		next := make([]Hash, 0, len(level)/2+1)
		for j := 0; j < len(level); j += 2 {
			if j+1 < len(level) {
				next = append(next, merkleNode(level[j], level[j+1]))
			} else {
				next = append(next, merkleNode(level[j], level[j]))
			}
		}
		level = next
		i /= 2
	}
	return proof, nil
}

// VerifyProof checks a MerkleProof: that leaf h at index i under a
// tree of n leaves hashes up to root.
func VerifyProof(root Hash, h Hash, i, n int, proof []Hash) bool {
	if i < 0 || i >= n {
		return false
	}
	cur := merkleLeaf(h)
	for _, sib := range proof {
		if i%2 == 0 {
			cur = merkleNode(cur, sib)
		} else {
			cur = merkleNode(sib, cur)
		}
		i /= 2
	}
	return cur == root
}
