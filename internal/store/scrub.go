package store

// Scrub: the repair half of verification. Where Verify only reports,
// Scrub re-materializes damaged or missing blobs from surviving
// replicas (hash-checked before use — a rotten replica repairs
// nothing), and quarantines what it cannot repair: the damaged bytes
// move to quarantine/<hash> for forensics, the object is dropped from
// the index, and subsequent Gets fail with the typed
// *MissingObjectError the resilience recovery ladder falls back
// through. Because campaigns are deterministic by design, a rerun then
// re-derives the bit-identical blob and re-Puts it under the same
// content address — quarantine is how the store asks the simulation to
// heal it. Scrub also drops refs whose content no longer parses and
// advances an absent/unparsable/one-stale chain anchor; damaged ledger
// entries are never rewritten — the chain is append-only history and
// its damage is kept tamper-evident.

import (
	"fmt"
	"strings"
)

// RepairAction records what Scrub did to one object, ref, or anchor.
type RepairAction struct {
	Hash Hash `json:"hash,omitzero"`
	// Name is set for non-object repairs (refs, the chain anchor).
	Name string `json:"name,omitempty"`
	// Outcome: "repaired-from-replica", "quarantined", "dropped-ref",
	// "re-anchored" (plus their "-failed" variants).
	Outcome string `json:"outcome"`
	Detail  string `json:"detail,omitempty"`
}

// ScrubReport is the outcome of a scrub pass.
type ScrubReport struct {
	// Verify is the pre-scrub walk the pass acted on.
	Verify *VerifyReport `json:"verify"`
	// Actions are the repairs and quarantines taken (empty without
	// repair mode).
	Actions []RepairAction `json:"actions,omitempty"`
	// SweptTemps are the orphan temps removed.
	SweptTemps []string `json:"swept_temps,omitempty"`
	// Unrepaired are objects that stayed damaged or absent: nothing
	// held good bytes for them. Quarantined objects appear here too —
	// they need a re-derivation pass to come back.
	Unrepaired []Hash `json:"unrepaired,omitempty"`
}

func (r *ScrubReport) String() string {
	var b strings.Builder
	b.WriteString(r.Verify.String())
	fmt.Fprintf(&b, "scrub: %d actions, %d temps swept, %d unrepaired\n",
		len(r.Actions), len(r.SweptTemps), len(r.Unrepaired))
	for _, a := range r.Actions {
		fmt.Fprintf(&b, "  %-22s %s %s\n", a.Outcome, a.Hash.Short(), a.Detail)
	}
	for _, h := range r.Unrepaired {
		fmt.Fprintf(&b, "  unrepaired             %s\n", h.Short())
	}
	return b.String()
}

// Scrub verifies the store and, when repair is set, heals what it can:
// damaged or missing objects are re-fetched from replicas, unrepairable
// ones quarantined, orphan temps swept. Without repair it is Verify
// plus a temp sweep report (nothing is modified but the temps).
func (s *Store) Scrub(repair bool) (*ScrubReport, error) {
	ver, err := s.Verify()
	if err != nil {
		return nil, err
	}
	rep := &ScrubReport{Verify: ver}
	if !repair {
		return rep, nil
	}

	// One object can be reported once per reference path; act once.
	seen := map[Hash]struct{}{}
	for _, f := range ver.Findings {
		if f.Kind != FindingCorruptObject && f.Kind != FindingMissingObject {
			continue
		}
		h, err := ParseHash(f.Name)
		if err != nil {
			continue // alien names are not content-addressed repairables
		}
		if _, done := seen[h]; done {
			continue
		}
		seen[h] = struct{}{}
		act, repaired := s.repairObject(h, f.Kind)
		rep.Actions = append(rep.Actions, act)
		if !repaired {
			rep.Unrepaired = append(rep.Unrepaired, h)
		}
	}

	// Refs whose content no longer parses point at nothing recoverable:
	// drop them. The checkpoint blob they once named (if any) stays
	// ledger-pinned, so nothing reachable is lost — only one rung of
	// rollback depth, which the next campaign commit rebuilds.
	for _, f := range ver.Findings {
		if f.Kind != FindingBadRef {
			continue
		}
		if err := s.primary.Remove(refPrefix + f.Name); err != nil {
			rep.Actions = append(rep.Actions, RepairAction{Name: f.Name, Outcome: "drop-ref-failed",
				Detail: err.Error()})
			continue
		}
		rep.Actions = append(rep.Actions, RepairAction{Name: f.Name, Outcome: "dropped-ref",
			Detail: "content did not parse as a hash; any object it named remains ledger-pinned"})
	}

	if act, acted := s.scrubAnchor(); acted {
		rep.Actions = append(rep.Actions, act)
	}

	swept, err := s.Sweep()
	if err != nil {
		return nil, fmt.Errorf("store: sweeping temps: %w", err)
	}
	rep.SweptTemps = swept
	return rep, nil
}

// repairObject tries each replica in turn for good bytes; failing
// that, it quarantines whatever damaged bytes exist and drops the
// object so a deterministic re-derivation can re-Put it.
func (s *Store) repairObject(h Hash, kind FindingKind) (RepairAction, bool) {
	name := objectName(h)
	for i, r := range s.replicas {
		data, err := r.Get(name)
		if err != nil || HashOf(data) != h {
			continue // absent or rotten replica; keep looking
		}
		if err := s.primary.Put(name, data); err != nil {
			return RepairAction{Hash: h, Outcome: "quarantined",
				Detail: fmt.Sprintf("replica %d held good bytes but rewrite failed: %v", i, err)}, false
		}
		s.mu.Lock()
		s.index[h] = struct{}{}
		s.mu.Unlock()
		return RepairAction{Hash: h, Outcome: "repaired-from-replica",
			Detail: fmt.Sprintf("replica %d", i)}, true
	}

	// Quarantine: preserve the damaged bytes for forensics, then make
	// the damage honest — a missing object with a typed error beats a
	// silently wrong one.
	detail := "no replica held good bytes"
	if kind == FindingCorruptObject {
		if data, err := s.primary.Get(name); err == nil {
			if err := s.primary.Put("quarantine/"+h.String(), data); err != nil {
				detail = fmt.Sprintf("quarantine copy failed: %v", err)
			}
		}
		if err := s.primary.Remove(name); err != nil {
			return RepairAction{Hash: h, Outcome: "quarantined",
				Detail: fmt.Sprintf("removing damaged object failed: %v", err)}, false
		}
	}
	s.mu.Lock()
	delete(s.index, h)
	s.mu.Unlock()
	return RepairAction{Hash: h, Outcome: "quarantined", Detail: detail}, false
}

// scrubAnchor re-anchors the chain when the anchor itself is the
// damaged party: absent, unparsable, or lagging by the one-entry crash
// window. A parsable anchor naming any *other* hash is deliberately
// left alone — rewriting it would launder a tampered or bit-rotted
// tail entry, and tamper evidence outranks tidiness. Returns whether
// it acted.
func (s *Store) scrubAnchor() (RepairAction, bool) {
	names, err := s.primary.List(ledgerPrefix)
	if err != nil || len(names) == 0 {
		return RepairAction{}, false
	}
	headOf := func(name string) Hash {
		raw, err := s.primary.Get(name)
		if err != nil {
			return Hash{}
		}
		return HashOf(raw)
	}
	head := headOf(names[len(names)-1])
	if raw, err := s.primary.Get(anchorName); err == nil {
		if h, perr := ParseHash(strings.TrimSpace(string(raw))); perr == nil {
			if h == head {
				return RepairAction{}, false // healthy
			}
			if len(names) < 2 || h != headOf(names[len(names)-2]) {
				return RepairAction{}, false // mismatch: tamper-evident, not ours to rewrite
			}
			// Exactly one entry stale: the crash window. Advance it.
		}
	}
	if err := s.primary.Put(anchorName, []byte(head.String()+"\n")); err != nil {
		return RepairAction{Name: anchorName, Outcome: "re-anchor-failed", Detail: err.Error()}, true
	}
	return RepairAction{Name: anchorName, Outcome: "re-anchored",
		Detail: "anchor was absent, unparsable, or one entry stale"}, true
}
