package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestScrubRepairsFromReplica(t *testing.T) {
	replica, err := NewDirBackend(filepath.Join(t.TempDir(), "replica"))
	if err != nil {
		t.Fatalf("NewDirBackend: %v", err)
	}
	s, b := newTestStore(t, replica)
	hashes := populate(t, s, "a", 2)

	// Rot one primary object; the replica still holds good bytes.
	flipBit(filepath.Join(b.Root(), filepath.FromSlash(objectName(hashes[0]))), 6)
	rep, err := s.Scrub(true)
	if err != nil {
		t.Fatalf("Scrub: %v", err)
	}
	if len(rep.Actions) != 1 || rep.Actions[0].Outcome != "repaired-from-replica" {
		t.Fatalf("Actions = %+v, want one repair", rep.Actions)
	}
	if len(rep.Unrepaired) != 0 {
		t.Fatalf("Unrepaired = %v", rep.Unrepaired)
	}
	if got, err := s.Get(hashes[0]); err != nil || HashOf(got) != hashes[0] {
		t.Fatalf("Get after repair = %v", err)
	}
	after, _ := s.Verify()
	if !after.Clean() {
		t.Fatalf("store not clean after repair:\n%s", after)
	}
}

func TestScrubIgnoresRottenReplica(t *testing.T) {
	replica, err := NewDirBackend(filepath.Join(t.TempDir(), "replica"))
	if err != nil {
		t.Fatalf("NewDirBackend: %v", err)
	}
	s, b := newTestStore(t, replica)
	hashes := populate(t, s, "a", 1)
	// Both copies rot: the replica must be hash-checked, not trusted.
	flipBit(filepath.Join(b.Root(), filepath.FromSlash(objectName(hashes[0]))), 6)
	flipBit(filepath.Join(replica.Root(), filepath.FromSlash(objectName(hashes[0]))), 9)
	rep, err := s.Scrub(true)
	if err != nil {
		t.Fatalf("Scrub: %v", err)
	}
	if len(rep.Unrepaired) != 1 || rep.Unrepaired[0] != hashes[0] {
		t.Fatalf("Unrepaired = %v, want [%s]", rep.Unrepaired, hashes[0].Short())
	}
	if rep.Actions[0].Outcome != "quarantined" {
		t.Fatalf("Actions = %+v, want quarantine", rep.Actions)
	}
}

func TestScrubQuarantineThenRederive(t *testing.T) {
	s, b := newTestStore(t)
	data := []byte("deterministic checkpoint payload")
	h, err := s.Put(data)
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	if _, err := s.Append(Manifest{Run: "a", Step: 0,
		Artifacts: []Artifact{{Name: "ckpt-000000000", Role: "checkpoint", Hash: h, Size: int64(len(data))}}}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	flipBit(filepath.Join(b.Root(), filepath.FromSlash(objectName(h))), 3)

	rep, err := s.Scrub(true)
	if err != nil {
		t.Fatalf("Scrub: %v", err)
	}
	if len(rep.Unrepaired) != 1 {
		t.Fatalf("Unrepaired = %v, want the rotten object", rep.Unrepaired)
	}
	// Quarantine preserved the damaged bytes for forensics...
	if q, err := b.Get("quarantine/" + h.String()); err != nil || len(q) != len(data) {
		t.Fatalf("quarantine copy = %d bytes, %v", len(q), err)
	}
	// ...and made the damage honest: a typed miss, not silent rot.
	var miss *MissingObjectError
	if _, err := s.Get(h); !errors.As(err, &miss) {
		t.Fatalf("Get after quarantine = %v, want *MissingObjectError", err)
	}

	// A deterministic rerun re-derives the bit-identical blob; the
	// re-Put lands under the same ledger-pinned address and the store
	// verifies clean again. This is the "re-derivable sources" repair
	// path: the simulation itself is the replica of last resort.
	h2, err := s.Put(data)
	if err != nil {
		t.Fatalf("re-derive Put: %v", err)
	}
	if h2 != h {
		t.Fatalf("re-derived hash %s != ledger-pinned %s", h2.Short(), h.Short())
	}
	after, err := s.Verify()
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if n := after.Severe(); n != 0 {
		t.Fatalf("store still damaged after re-derivation (%d severe):\n%s", n, after)
	}
}

func TestScrubWithoutRepairOnlyReports(t *testing.T) {
	s, b := newTestStore(t)
	hashes := populate(t, s, "a", 1)
	flipBit(filepath.Join(b.Root(), filepath.FromSlash(objectName(hashes[0]))), 3)
	rep, err := s.Scrub(false)
	if err != nil {
		t.Fatalf("Scrub: %v", err)
	}
	if len(rep.Actions) != 0 {
		t.Fatalf("repair=false took actions: %+v", rep.Actions)
	}
	if rep.Verify.Severe() == 0 {
		t.Fatal("damage not reported")
	}
	// The damaged object is untouched.
	var corr *CorruptObjectError
	if _, err := s.Get(hashes[0]); !errors.As(err, &corr) {
		t.Fatalf("Get = %v, want *CorruptObjectError still", err)
	}
}

func TestGCKeepsReachableSweepsGarbage(t *testing.T) {
	s, _ := newTestStore(t)
	hashes := populate(t, s, "a", 2)
	refOnly, _ := s.Put([]byte("ref-only blob"))
	if err := s.SetRef("runs/a/extra", refOnly); err != nil {
		t.Fatalf("SetRef: %v", err)
	}
	garbage, _ := s.Put([]byte("unreachable"))

	rep, err := s.GC()
	if err != nil {
		t.Fatalf("GC: %v", err)
	}
	if len(rep.Swept) != 1 || rep.Swept[0] != garbage {
		t.Fatalf("Swept = %v, want [%s]", rep.Swept, garbage.Short())
	}
	if rep.Kept != 3 {
		t.Fatalf("Kept = %d, want 3", rep.Kept)
	}
	for _, h := range append(hashes, refOnly) {
		if _, err := s.Get(h); err != nil {
			t.Fatalf("reachable %s collected: %v", h.Short(), err)
		}
	}
	if s.Has(garbage) {
		t.Fatal("swept object still indexed")
	}
}

func TestGCRefusesUnreadableLedger(t *testing.T) {
	s, b := newTestStore(t)
	populate(t, s, "a", 2)
	garbage, _ := s.Put([]byte("unreachable"))
	flipBit(filepath.Join(b.Root(), "ledger", "000000000"), 4)
	if _, err := s.GC(); err == nil {
		t.Fatal("GC ran over an undecodable ledger")
	}
	// Nothing was removed — not even true garbage.
	if _, err := s.Get(garbage); err != nil {
		t.Fatalf("GC removed objects despite refusing: %v", err)
	}
}

func TestGCRefusesBadRef(t *testing.T) {
	s, b := newTestStore(t)
	populate(t, s, "a", 1)
	if err := b.Put("refs/runs/a/bogus", []byte("not a hash\n")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if _, err := s.GC(); err == nil {
		t.Fatal("GC ran over an unparsable ref")
	}
}

// TestScrubDropsBadRef: a ref whose content no longer parses is
// dropped — the blob it once named stays ledger-pinned, so only a rung
// of rollback depth is lost, and the store verifies clean again.
func TestScrubDropsBadRef(t *testing.T) {
	s, b := newTestStore(t)
	populate(t, s, "a", 1)
	if err := b.Put("refs/runs/a/rotten", []byte("not a hash\n")); err != nil {
		t.Fatalf("Put ref: %v", err)
	}
	rep, err := s.Scrub(true)
	if err != nil {
		t.Fatalf("Scrub: %v", err)
	}
	if len(rep.Actions) != 1 || rep.Actions[0].Outcome != "dropped-ref" || rep.Actions[0].Name != "runs/a/rotten" {
		t.Fatalf("Actions = %+v, want one dropped-ref", rep.Actions)
	}
	after, _ := s.Verify()
	if !after.Clean() {
		t.Fatalf("store not clean after dropping the ref:\n%s", after)
	}
}

// TestScrubReanchors: an anchor that is unparsable (its own bytes
// rotted) or stale by the one-entry crash window is recomputable state;
// scrub rewrites it from the chain tail.
func TestScrubReanchors(t *testing.T) {
	for _, tc := range []struct {
		name   string
		damage func(t *testing.T, s *Store, b *DirBackend)
	}{
		{"unparsable", func(t *testing.T, s *Store, b *DirBackend) {
			if err := b.Put(anchorName, []byte("garbage, not hex\n")); err != nil {
				t.Fatalf("Put anchor: %v", err)
			}
		}},
		{"stale-by-one", func(t *testing.T, s *Store, b *DirBackend) {
			raw, err := b.Get("ledger/000000000")
			if err != nil {
				t.Fatalf("Get entry 0: %v", err)
			}
			if err := b.Put(anchorName, []byte(HashOf(raw).String()+"\n")); err != nil {
				t.Fatalf("Put anchor: %v", err)
			}
		}},
		{"absent", func(t *testing.T, s *Store, b *DirBackend) {
			if err := b.Remove(anchorName); err != nil {
				t.Fatalf("Remove anchor: %v", err)
			}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, b := newTestStore(t)
			populate(t, s, "a", 2)
			tc.damage(t, s, b)
			rep, err := s.Scrub(true)
			if err != nil {
				t.Fatalf("Scrub: %v", err)
			}
			var reanchored bool
			for _, a := range rep.Actions {
				if a.Outcome == "re-anchored" {
					reanchored = true
				}
			}
			if !reanchored {
				t.Fatalf("no re-anchored action in %+v", rep.Actions)
			}
			after, _ := s.Verify()
			if !after.Clean() || len(after.Findings) != 0 {
				t.Fatalf("anchor still unhealthy after scrub:\n%s", after)
			}
		})
	}
}

// TestScrubLeavesMismatchedAnchor: an anchor that names some *other*
// hash could mean a tampered tail entry — rewriting it would launder
// the tampering, so scrub must leave it severe and tamper-evident.
func TestScrubLeavesMismatchedAnchor(t *testing.T) {
	s, b := newTestStore(t)
	populate(t, s, "a", 2)
	path := filepath.Join(b.Root(), "ledger", "000000001")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	tampered := strings.Replace(string(raw), `"run": "a"`, `"run": "z"`, 1)
	if tampered == string(raw) {
		t.Fatal("tamper had no effect")
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	rep, err := s.Scrub(true)
	if err != nil {
		t.Fatalf("Scrub: %v", err)
	}
	for _, a := range rep.Actions {
		if a.Outcome == "re-anchored" {
			t.Fatalf("scrub laundered a tampered tail: %+v", a)
		}
	}
	after, _ := s.Verify()
	if after.Severe() == 0 {
		t.Fatalf("tampered tail no longer severe after scrub:\n%s", after)
	}
}

// TestGCNeverCollectsReachableProperty is the seeded property test
// behind "gc provably never collects a ledger-reachable object": for
// each seed, build a random mix of ledger-pinned, ref-pinned, and
// dangling blobs, run GC, and check exactly the unreachable set is
// gone and everything reachable still content-verifies.
func TestGCNeverCollectsReachableProperty(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			rng := seed
			next := func() uint64 { // splitmix64, matching the chaos harness's generator
				rng += 0x9e3779b97f4a7c15
				z := rng
				z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
				z = (z ^ (z >> 27)) * 0x94d049bb133111eb
				return z ^ (z >> 31)
			}
			intn := func(n int) int { return int(next() % uint64(n)) }

			s, _ := newTestStore(t)
			reachable := map[Hash]struct{}{}
			unreachable := map[Hash]struct{}{}
			nBlobs := 4 + intn(12)
			var pending []Artifact
			for i := 0; i < nBlobs; i++ {
				data := []byte(fmt.Sprintf("seed %d blob %d: %x", seed, i, next()))
				h, err := s.Put(data)
				if err != nil {
					t.Fatalf("Put: %v", err)
				}
				switch intn(3) {
				case 0: // pin via a ledger entry (possibly batched)
					pending = append(pending, Artifact{Name: fmt.Sprintf("b%d", i), Role: "blob", Hash: h, Size: int64(len(data))})
					reachable[h] = struct{}{}
					if intn(2) == 0 {
						if _, err := s.Append(Manifest{Run: "p", Step: i, Artifacts: pending}); err != nil {
							t.Fatalf("Append: %v", err)
						}
						pending = nil
					}
				case 1: // pin via a ref
					if err := s.SetRef(fmt.Sprintf("runs/p/b%d", i), h); err != nil {
						t.Fatalf("SetRef: %v", err)
					}
					reachable[h] = struct{}{}
				default: // dangling
					if _, ok := reachable[h]; !ok {
						unreachable[h] = struct{}{}
					}
				}
			}
			if len(pending) > 0 {
				if _, err := s.Append(Manifest{Run: "p", Step: nBlobs, Artifacts: pending}); err != nil {
					t.Fatalf("Append: %v", err)
				}
			}

			rep, err := s.GC()
			if err != nil {
				t.Fatalf("GC: %v", err)
			}
			for h := range reachable {
				data, err := s.Get(h)
				if err != nil {
					t.Fatalf("reachable %s gone after GC: %v", h.Short(), err)
				}
				if HashOf(data) != h {
					t.Fatalf("reachable %s damaged after GC", h.Short())
				}
			}
			for _, h := range rep.Swept {
				if _, ok := reachable[h]; ok {
					t.Fatalf("GC swept reachable %s", h.Short())
				}
			}
			for h := range unreachable {
				if s.Has(h) {
					t.Fatalf("unreachable %s survived GC", h.Short())
				}
			}
			// Idempotence: a second sweep finds nothing.
			rep2, err := s.GC()
			if err != nil {
				t.Fatalf("second GC: %v", err)
			}
			if len(rep2.Swept) != 0 {
				t.Fatalf("second GC swept %v", rep2.Swept)
			}
		})
	}
}
