// Package store is the durable run ledger: a crash-consistent,
// content-addressed artifact store plus a Merkle-chained manifest log.
// It exists because the repository's correctness methodology rests on
// "sha256-identical to golden" claims — the determinism suite, the
// chaos safety arm, the reshard gates — and those claims are only as
// good as the artifacts they are made about. Checkpoints, postmortems
// and run reports used to live as loose files in a run dir with a
// per-file CRC between them and silent corruption; here every artifact
// is a blob keyed by its sha256 (so bit-identical reruns — the common
// case by design — dedup to one object), every campaign segment appends
// a hash-chained manifest entry, and any past claim is verifiable
// offline by walking the chain (Verify).
//
// All writes go through one atomic path — temp write, fsync, rename,
// directory fsync — behind a pluggable Backend (a local directory now,
// an S3-compatible object store later). The robustness story is tested
// by a seeded filesystem fault layer (FaultPlan: torn writes, bit rot,
// ENOSPC, crash points around the rename), the storage analogue of
// mpi.FaultPlan, driven by the chaos harness and the cmd/yystore
// verify/scrub/gc tools.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Hash is the content address of a blob: its sha256.
type Hash [sha256.Size]byte

// HashOf returns the content address of data.
func HashOf(data []byte) Hash { return sha256.Sum256(data) }

// IsZero reports whether h is the zero hash (no digest recorded).
func (h Hash) IsZero() bool { return h == Hash{} }

func (h Hash) String() string { return hex.EncodeToString(h[:]) }

// Short is the leading 8 hex digits, for human-facing summaries.
func (h Hash) Short() string { return hex.EncodeToString(h[:4]) }

// MarshalText encodes the hash as lowercase hex (JSON-friendly).
func (h Hash) MarshalText() ([]byte, error) {
	out := make([]byte, hex.EncodedLen(len(h)))
	hex.Encode(out, h[:])
	return out, nil
}

// UnmarshalText decodes a lowercase-hex hash.
func (h *Hash) UnmarshalText(text []byte) error {
	if hex.DecodedLen(len(text)) != len(h) {
		return fmt.Errorf("store: hash text of %d chars, want %d", len(text), hex.EncodedLen(len(h)))
	}
	_, err := hex.Decode(h[:], text)
	return err
}

// ParseHash decodes a hex content address.
func ParseHash(s string) (Hash, error) {
	var h Hash
	err := h.UnmarshalText([]byte(s))
	return h, err
}

// objectName maps a content address to its backend name; the two-digit
// fan-out keeps any one directory small on the local backend.
func objectName(h Hash) string {
	hx := h.String()
	return "objects/" + hx[:2] + "/" + hx
}

// parseObjectName inverts objectName.
func parseObjectName(name string) (Hash, bool) {
	rest, ok := strings.CutPrefix(name, "objects/")
	if !ok {
		return Hash{}, false
	}
	i := strings.IndexByte(rest, '/')
	if i != 2 {
		return Hash{}, false
	}
	h, err := ParseHash(rest[i+1:])
	if err != nil || !strings.HasPrefix(rest[i+1:], rest[:2]) {
		return Hash{}, false
	}
	return h, true
}

// MissingObjectError is the typed read failure for a blob the store has
// no object for: the checkpoint ladder in internal/resilience falls
// back through it to an older artifact.
type MissingObjectError struct {
	Hash Hash
}

func (e *MissingObjectError) Error() string {
	return fmt.Sprintf("store: object %s does not exist", e.Hash)
}

// CorruptObjectError is the typed read failure for a blob whose bytes
// no longer hash to its name — bit rot or a tampered object. The
// recovery ladder falls back through it; Scrub repairs or quarantines
// the object.
type CorruptObjectError struct {
	Hash Hash
	// Actual is the content hash the damaged bytes produce.
	Actual Hash
}

func (e *CorruptObjectError) Error() string {
	return fmt.Sprintf("store: object %s is corrupt: content hashes to %s", e.Hash, e.Actual)
}

// RefEntry is one name → content-address pointer. A damaged ref (bytes
// that do not parse as a hash) carries its error instead.
type RefEntry struct {
	Name string
	Hash Hash
	Err  error
}

// Store is a content-addressed artifact store over a primary backend
// and optional replica backends (object mirrors Scrub can repair from).
type Store struct {
	primary  Backend
	replicas []Backend

	mu    sync.RWMutex
	index map[Hash]struct{} // objects known present on the primary
	seq   int               // next ledger sequence number
	head  Hash              // chain hash of the newest ledger entry

	// Write-path counters for the live telemetry plane: lock-free so
	// reading them never contends with the allocation-free dedup fast
	// path they instrument.
	putBytes   atomic.Int64
	dedupHits  atomic.Int64
	dedupBytes atomic.Int64
}

// Stats is a point-in-time read of the store's write-path counters.
// Objects is durable state; the byte/hit counters are per-process
// (they start at zero on Open).
type Stats struct {
	// Objects is the number of blobs in the index.
	Objects int
	// PutBytes counts bytes newly committed by Put (dedup misses).
	PutBytes int64
	// DedupHits counts Puts satisfied by an existing identical blob,
	// and DedupBytes the bytes those Puts did not rewrite.
	DedupHits  int64
	DedupBytes int64
}

// Stats returns the current counters.
func (s *Store) Stats() Stats {
	return Stats{
		Objects:    s.Objects(),
		PutBytes:   s.putBytes.Load(),
		DedupHits:  s.dedupHits.Load(),
		DedupBytes: s.dedupBytes.Load(),
	}
}

// Open loads a store rooted at the primary backend: the object index
// and the ledger head. Replicas are write-through object mirrors used
// by Scrub to re-materialize damaged blobs. Opening never repairs or
// sweeps anything — a crashed writer's leftovers stay visible to
// Verify until Sweep or Scrub is asked to act.
func Open(primary Backend, replicas ...Backend) (*Store, error) {
	s := &Store{primary: primary, replicas: replicas, index: map[Hash]struct{}{}}
	names, err := primary.List("objects/")
	if err != nil {
		return nil, fmt.Errorf("store: listing objects: %w", err)
	}
	for _, n := range names {
		if h, ok := parseObjectName(n); ok {
			s.index[h] = struct{}{}
		}
		// Unparsable names stay out of the index; Verify reports them.
	}
	entries, err := primary.List(ledgerPrefix)
	if err != nil {
		return nil, fmt.Errorf("store: listing ledger: %w", err)
	}
	if len(entries) > 0 {
		last := entries[len(entries)-1]
		seq, ok := parseEntryName(last)
		if !ok {
			return nil, fmt.Errorf("store: alien ledger entry %q", last)
		}
		raw, err := primary.Get(last)
		if err != nil {
			return nil, fmt.Errorf("store: reading ledger head %s: %w", last, err)
		}
		s.seq = seq + 1
		s.head = HashOf(raw)
	}
	return s, nil
}

// Put stores data under its content address and returns the address.
// The steady-state path — a blob the store already holds, the shape
// bit-identical reruns produce — is a hash plus an index hit and
// allocates nothing (pinned by BENCH_store.json and yybench
// -gate-store). A miss commits the object atomically to the primary
// and mirrors it to every replica.
func (s *Store) Put(data []byte) (Hash, error) {
	h := HashOf(data)
	s.mu.RLock()
	_, ok := s.index[h]
	s.mu.RUnlock()
	if ok {
		s.dedupHits.Add(1)
		s.dedupBytes.Add(int64(len(data)))
		return h, nil
	}
	name := objectName(h)
	if err := s.primary.Put(name, data); err != nil {
		return Hash{}, err
	}
	for _, r := range s.replicas {
		if err := r.Put(name, data); err != nil {
			return Hash{}, fmt.Errorf("store: mirroring %s: %w", name, err)
		}
	}
	s.mu.Lock()
	s.index[h] = struct{}{}
	s.mu.Unlock()
	s.putBytes.Add(int64(len(data)))
	return h, nil
}

// Has reports whether the store's index holds the object.
func (s *Store) Has(h Hash) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.index[h]
	return ok
}

// Objects returns the number of indexed blobs.
func (s *Store) Objects() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// Get returns the blob's bytes, verified against its content address on
// every read: a missing object is a *MissingObjectError, damaged bytes
// are a *CorruptObjectError — the typed failures the resilience
// recovery ladder falls back through.
func (s *Store) Get(h Hash) ([]byte, error) {
	data, err := s.primary.Get(objectName(h))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, &MissingObjectError{Hash: h}
		}
		return nil, err
	}
	if got := HashOf(data); got != h {
		return nil, &CorruptObjectError{Hash: h, Actual: got}
	}
	return data, nil
}

// SetRef atomically points a mutable name at a content address.
func (s *Store) SetRef(name string, h Hash) error {
	return s.primary.Put(refPrefix+name, []byte(h.String()+"\n"))
}

// Ref resolves a name set with SetRef. A missing ref satisfies
// errors.Is(err, fs.ErrNotExist).
func (s *Store) Ref(name string) (Hash, error) {
	raw, err := s.primary.Get(refPrefix + name)
	if err != nil {
		return Hash{}, err
	}
	return ParseHash(strings.TrimSpace(string(raw)))
}

// DelRef removes a ref; the object it pointed at stays until GC finds
// it unreachable from both the refs and the ledger.
func (s *Store) DelRef(name string) error {
	return s.primary.Remove(refPrefix + name)
}

// Refs lists every ref under the prefix, sorted by name. Damaged refs
// are returned with their parse error set rather than dropped.
func (s *Store) Refs(prefix string) ([]RefEntry, error) {
	names, err := s.primary.List(refPrefix + prefix)
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	var out []RefEntry
	for _, n := range names {
		e := RefEntry{Name: strings.TrimPrefix(n, refPrefix)}
		raw, err := s.primary.Get(n)
		if err != nil {
			e.Err = err
		} else if e.Hash, err = ParseHash(strings.TrimSpace(string(raw))); err != nil {
			e.Err = err
		}
		out = append(out, e)
	}
	return out, nil
}

// Sweep removes orphaned temp files a crashed writer left behind (a
// crash between temp write and rename strands them forever otherwise)
// and returns their names. Campaign starts call this; Verify reports
// the orphans instead if it runs first.
func (s *Store) Sweep() ([]string, error) {
	return s.primary.SweepTemps()
}

const refPrefix = "refs/"
