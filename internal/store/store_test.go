package store

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func newTestStore(t *testing.T, replicas ...Backend) (*Store, *DirBackend) {
	t.Helper()
	b, err := NewDirBackend(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatalf("NewDirBackend: %v", err)
	}
	s, err := Open(b, replicas...)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s, b
}

func TestPutGetRoundtrip(t *testing.T) {
	s, _ := newTestStore(t)
	data := []byte("the quick brown fox")
	h, err := s.Put(data)
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	if h != HashOf(data) {
		t.Fatalf("Put hash %s, want %s", h, HashOf(data))
	}
	got, err := s.Get(h)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if string(got) != string(data) {
		t.Fatalf("Get = %q, want %q", got, data)
	}
	if !s.Has(h) {
		t.Fatal("Has = false after Put")
	}
}

func TestPutDedup(t *testing.T) {
	s, b := newTestStore(t)
	data := []byte("bit-identical rerun checkpoint payload")
	var first Hash
	for i := 0; i < 5; i++ {
		h, err := s.Put(data)
		if err != nil {
			t.Fatalf("Put #%d: %v", i, err)
		}
		if i == 0 {
			first = h
		} else if h != first {
			t.Fatalf("Put #%d hash %s, want %s", i, h, first)
		}
	}
	if s.Objects() != 1 {
		t.Fatalf("Objects = %d after 5 identical Puts, want 1", s.Objects())
	}
	names, err := b.List("objects/")
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(names) != 1 {
		t.Fatalf("backend holds %d objects after 5 identical Puts, want 1", len(names))
	}
	// Dedup hits must not touch the backend at all: the op counter
	// only advances on real writes.
	if b.ops != 1 {
		t.Fatalf("backend saw %d Puts, want 1", b.ops)
	}
}

func TestGetMissingTyped(t *testing.T) {
	s, _ := newTestStore(t)
	h := HashOf([]byte("never stored"))
	_, err := s.Get(h)
	var miss *MissingObjectError
	if !errors.As(err, &miss) {
		t.Fatalf("Get(missing) = %v, want *MissingObjectError", err)
	}
	if miss.Hash != h {
		t.Fatalf("MissingObjectError.Hash = %s, want %s", miss.Hash, h)
	}
}

func TestGetCorruptTyped(t *testing.T) {
	s, b := newTestStore(t)
	h, err := s.Put([]byte("soon to rot"))
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	flipBit(filepath.Join(b.Root(), filepath.FromSlash(objectName(h))), 3)
	_, err = s.Get(h)
	var corr *CorruptObjectError
	if !errors.As(err, &corr) {
		t.Fatalf("Get(corrupt) = %v, want *CorruptObjectError", err)
	}
	if corr.Hash != h || corr.Actual == h {
		t.Fatalf("CorruptObjectError = %+v, want Hash=%s, Actual!=Hash", corr, h)
	}
}

func TestHashTextRoundtrip(t *testing.T) {
	h := HashOf([]byte("x"))
	text, err := h.MarshalText()
	if err != nil {
		t.Fatalf("MarshalText: %v", err)
	}
	var back Hash
	if err := back.UnmarshalText(text); err != nil {
		t.Fatalf("UnmarshalText: %v", err)
	}
	if back != h {
		t.Fatalf("roundtrip %s != %s", back, h)
	}
	if _, err := ParseHash("zz"); err == nil {
		t.Fatal("ParseHash accepted a 2-char string")
	}
}

func TestRefs(t *testing.T) {
	s, _ := newTestStore(t)
	h1, _ := s.Put([]byte("one"))
	h2, _ := s.Put([]byte("two"))
	if err := s.SetRef("runs/a/ckpt-000000001", h1); err != nil {
		t.Fatalf("SetRef: %v", err)
	}
	if err := s.SetRef("runs/a/ckpt-000000002", h2); err != nil {
		t.Fatalf("SetRef: %v", err)
	}
	got, err := s.Ref("runs/a/ckpt-000000002")
	if err != nil || got != h2 {
		t.Fatalf("Ref = %s, %v, want %s", got, err, h2)
	}
	refs, err := s.Refs("runs/a/")
	if err != nil {
		t.Fatalf("Refs: %v", err)
	}
	if len(refs) != 2 || refs[0].Hash != h1 || refs[1].Hash != h2 {
		t.Fatalf("Refs = %+v", refs)
	}
	if err := s.DelRef("runs/a/ckpt-000000001"); err != nil {
		t.Fatalf("DelRef: %v", err)
	}
	if _, err := s.Ref("runs/a/ckpt-000000001"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("Ref after DelRef = %v, want fs.ErrNotExist", err)
	}
	// Retargeting a ref is an atomic replace, not an error.
	if err := s.SetRef("runs/a/ckpt-000000002", h1); err != nil {
		t.Fatalf("SetRef retarget: %v", err)
	}
	if got, _ := s.Ref("runs/a/ckpt-000000002"); got != h1 {
		t.Fatalf("retargeted Ref = %s, want %s", got, h1)
	}
}

func TestLedgerChainAndReopen(t *testing.T) {
	s, b := newTestStore(t)
	var heads []Hash
	for i := 0; i < 3; i++ {
		data := []byte(fmt.Sprintf("ckpt %d", i))
		h, err := s.Put(data)
		if err != nil {
			t.Fatalf("Put: %v", err)
		}
		head, err := s.Append(Manifest{
			Run:  "t",
			Step: i * 4,
			Artifacts: []Artifact{
				{Name: fmt.Sprintf("ckpt-%09d", i*4), Role: "checkpoint", Hash: h, Size: int64(len(data))},
			},
		})
		if err != nil {
			t.Fatalf("Append #%d: %v", i, err)
		}
		heads = append(heads, head)
	}
	entries, err := s.Entries()
	if err != nil {
		t.Fatalf("Entries: %v", err)
	}
	if len(entries) != 3 {
		t.Fatalf("Entries = %d, want 3", len(entries))
	}
	for i, m := range entries {
		if m.Seq != i {
			t.Fatalf("entry %d has Seq %d", i, m.Seq)
		}
		if i > 0 && m.Prev != heads[i-1] {
			t.Fatalf("entry %d Prev = %s, want %s", i, m.Prev.Short(), heads[i-1].Short())
		}
	}
	if !entries[0].Prev.IsZero() {
		t.Fatalf("first entry Prev = %s, want zero", entries[0].Prev)
	}

	// Reopening resumes the chain where it left off.
	s2, err := Open(b)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	head, n := s2.Head()
	if n != 3 || head != heads[2] {
		t.Fatalf("reopened Head = %s, %d; want %s, 3", head.Short(), n, heads[2].Short())
	}
	if s2.Objects() != 3 {
		t.Fatalf("reopened Objects = %d, want 3", s2.Objects())
	}
	head4, err := s2.Append(Manifest{Run: "t", Step: 12})
	if err != nil {
		t.Fatalf("Append after reopen: %v", err)
	}
	entries, _ = s2.Entries()
	if len(entries) != 4 || entries[3].Prev != heads[2] || entries[3].Seq != 3 {
		t.Fatalf("post-reopen chain broken: %+v", entries[len(entries)-1])
	}
	_ = head4
}

func TestMerkleRootProperties(t *testing.T) {
	if !MerkleRoot(nil).IsZero() {
		t.Fatal("MerkleRoot(nil) not zero")
	}
	h := func(s string) Hash { return HashOf([]byte(s)) }
	one := MerkleRoot([]Hash{h("a")})
	if one.IsZero() || one == h("a") {
		t.Fatal("single-leaf root must be domain-separated from the leaf hash")
	}
	ab := MerkleRoot([]Hash{h("a"), h("b")})
	ba := MerkleRoot([]Hash{h("b"), h("a")})
	if ab == ba {
		t.Fatal("root must be order-sensitive")
	}
	// Odd counts pair the last with itself; changing any leaf moves the root.
	abc := MerkleRoot([]Hash{h("a"), h("b"), h("c")})
	abd := MerkleRoot([]Hash{h("a"), h("b"), h("d")})
	if abc == abd || abc == ab {
		t.Fatal("3-leaf roots must be distinct per content")
	}
}

func TestMerkleProof(t *testing.T) {
	var hashes []Hash
	for i := 0; i < 7; i++ {
		hashes = append(hashes, HashOf([]byte{byte(i)}))
	}
	root := MerkleRoot(hashes)
	for i := range hashes {
		proof, err := MerkleProof(hashes, i)
		if err != nil {
			t.Fatalf("MerkleProof(%d): %v", i, err)
		}
		if !VerifyProof(root, hashes[i], i, len(hashes), proof) {
			t.Fatalf("proof for leaf %d does not verify", i)
		}
		if VerifyProof(root, HashOf([]byte("wrong")), i, len(hashes), proof) {
			t.Fatalf("proof for leaf %d verifies a wrong leaf", i)
		}
	}
	if _, err := MerkleProof(hashes, 7); err == nil {
		t.Fatal("MerkleProof accepted out-of-range index")
	}
}

func TestBackendRejectsEscapingNames(t *testing.T) {
	_, b := newTestStore(t)
	for _, name := range []string{"", "/abs", "a/../../etc/passwd"} {
		if err := b.Put(name, []byte("x")); err == nil {
			t.Fatalf("Put(%q) accepted", name)
		}
		if _, err := b.Get(name); err == nil {
			t.Fatalf("Get(%q) accepted", name)
		}
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "report.txt")
	if err := WriteFileAtomic(path, []byte("v1"), 0o644); err != nil {
		t.Fatalf("WriteFileAtomic: %v", err)
	}
	if err := WriteFileAtomic(path, []byte("v2"), 0o644); err != nil {
		t.Fatalf("WriteFileAtomic overwrite: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "v2" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Fatalf("dir holds %d entries after atomic writes, want 1 (no temps)", len(ents))
	}
}

func TestSweepTemps(t *testing.T) {
	s, b := newTestStore(t)
	// A torn write strands a temp; List must not see it, Sweep must
	// remove it.
	b.SetFaults(NewFaultPlan([]Fault{{Op: 0, Kind: FaultTornWrite, Byte: 2}}))
	_, err := s.Put([]byte("payload"))
	var crash *CrashError
	if !errors.As(err, &crash) {
		t.Fatalf("torn Put = %v, want *CrashError", err)
	}
	temps, err := b.Temps()
	if err != nil || len(temps) != 1 {
		t.Fatalf("Temps = %v, %v; want one orphan", temps, err)
	}
	names, _ := b.List("objects/")
	if len(names) != 0 {
		t.Fatalf("List sees %v; temps must be invisible", names)
	}
	swept, err := s.Sweep()
	if err != nil || len(swept) != 1 {
		t.Fatalf("Sweep = %v, %v; want the orphan", swept, err)
	}
	temps, _ = b.Temps()
	if len(temps) != 0 {
		t.Fatalf("Temps after sweep = %v", temps)
	}
}

func TestENOSPCTyped(t *testing.T) {
	s, b := newTestStore(t)
	b.SetFaults(NewFaultPlan([]Fault{{Op: -1, Kind: FaultENOSPC}}))
	_, err := s.Put([]byte("payload"))
	var full *DiskFullError
	if !errors.As(err, &full) {
		t.Fatalf("Put = %v, want *DiskFullError", err)
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatal("DiskFullError must unwrap to syscall.ENOSPC")
	}
	// Persistent fault: every subsequent Put keeps failing.
	if _, err := s.Put([]byte("other")); !errors.As(err, &full) {
		t.Fatalf("second Put = %v, want *DiskFullError", err)
	}
}

func TestCrashFaultsLeaveNoVisibleBlob(t *testing.T) {
	for _, kind := range []FaultKind{FaultTornWrite, FaultCrashBeforeRename} {
		s, b := newTestStore(t)
		b.SetFaults(NewFaultPlan([]Fault{{Op: 0, Kind: kind}}))
		_, err := s.Put([]byte("payload"))
		var crash *CrashError
		if !errors.As(err, &crash) {
			t.Fatalf("%s: Put = %v, want *CrashError", kind, err)
		}
		if names, _ := b.List("objects/"); len(names) != 0 {
			t.Fatalf("%s: blob visible after crash: %v", kind, names)
		}
	}
}

func TestCrashAfterRenameCommits(t *testing.T) {
	s, b := newTestStore(t)
	b.SetFaults(NewFaultPlan([]Fault{{Op: 0, Kind: FaultCrashAfterRename}}))
	data := []byte("payload")
	_, err := s.Put(data)
	var crash *CrashError
	if !errors.As(err, &crash) {
		t.Fatalf("Put = %v, want *CrashError", err)
	}
	// The rename is the commit point: a reopened store sees the blob
	// whole even though the writer died before the dir-fsync.
	s2, err := Open(b)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	got, err := s2.Get(HashOf(data))
	if err != nil || string(got) != string(data) {
		t.Fatalf("Get after crash-after-rename = %q, %v", got, err)
	}
}
