package store

// Offline verification: walk the Merkle-chained ledger and every
// object and ref the store holds, recomputing every hash, and report
// each deviation as a typed Finding. The chaos harness's storage arm
// requires that every silent fault its seeded FaultPlan fires is
// matched by a severe finding here — "verify detects 100% of injected
// corruptions" is a gated claim, not an aspiration.

import (
	"encoding/json"
	"fmt"
	"strings"
)

// FindingKind classifies one verification deviation.
type FindingKind string

const (
	// Severe findings: the store's integrity claims are broken.

	// FindingChainGap: a ledger sequence number is missing.
	FindingChainGap FindingKind = "chain-gap"
	// FindingChainBreak: an entry's Prev does not match the sha256 of
	// the previous entry's stored bytes.
	FindingChainBreak FindingKind = "chain-break"
	// FindingBadEntry: a ledger entry fails to decode or its recorded
	// Seq disagrees with its name.
	FindingBadEntry FindingKind = "bad-entry"
	// FindingMerkleMismatch: an entry's Root does not match the
	// recomputed Merkle root over its artifact hashes.
	FindingMerkleMismatch FindingKind = "merkle-mismatch"
	// FindingMissingObject: a ledger- or ref-referenced blob has no
	// object in the store.
	FindingMissingObject FindingKind = "missing-object"
	// FindingCorruptObject: an object's bytes do not hash to its name.
	FindingCorruptObject FindingKind = "corrupt-object"
	// FindingSizeMismatch: an object's length differs from the size a
	// manifest recorded for it.
	FindingSizeMismatch FindingKind = "size-mismatch"
	// FindingBadRef: a ref's content does not parse as a hash.
	FindingBadRef FindingKind = "bad-ref"
	// FindingAlienObject: a name under objects/ that is not a
	// well-formed content address.
	FindingAlienObject FindingKind = "alien-object"
	// FindingBadAnchor: the chain anchor is absent, unparsable, or names
	// a hash matching neither the newest ledger entry nor its
	// predecessor — the tail of the chain (which no Prev link pins) can
	// no longer be trusted.
	FindingBadAnchor FindingKind = "bad-anchor"

	// Informational findings: hygiene, not integrity.

	// FindingOrphanTemp: a leftover temp file from a crashed writer.
	FindingOrphanTemp FindingKind = "orphan-temp"
	// FindingUnreferencedObject: an object no ledger entry or ref
	// reaches (GC fodder, not damage).
	FindingUnreferencedObject FindingKind = "unreferenced-object"
	// FindingStaleAnchor: the anchor lags the chain by exactly one
	// entry — the window a crash between an entry commit and its anchor
	// update leaves behind. The next Append (or Scrub) advances it.
	FindingStaleAnchor FindingKind = "stale-anchor"
)

// Finding is one verification deviation.
type Finding struct {
	Kind FindingKind `json:"kind"`
	// Name locates the damage: a backend name, ref name, or object
	// hash in hex.
	Name string `json:"name"`
	// Severe marks integrity damage (vs hygiene notes).
	Severe bool `json:"severe"`
	// Detail is the human-facing explanation.
	Detail string `json:"detail"`
}

func (f Finding) String() string {
	sev := "info"
	if f.Severe {
		sev = "SEVERE"
	}
	return fmt.Sprintf("%-7s %-20s %s: %s", sev, f.Kind, f.Name, f.Detail)
}

// VerifyReport is the outcome of a full store walk.
type VerifyReport struct {
	Entries  int       `json:"entries"`
	Objects  int       `json:"objects"`
	Refs     int       `json:"refs"`
	Findings []Finding `json:"findings,omitempty"`
}

// Severe counts integrity-breaking findings.
func (r *VerifyReport) Severe() int {
	n := 0
	for _, f := range r.Findings {
		if f.Severe {
			n++
		}
	}
	return n
}

// Clean reports whether the walk found no integrity damage.
func (r *VerifyReport) Clean() bool { return r.Severe() == 0 }

func (r *VerifyReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "store verify: %d ledger entries, %d objects, %d refs: %d findings (%d severe)\n",
		r.Entries, r.Objects, r.Refs, len(r.Findings), r.Severe())
	for _, f := range r.Findings {
		fmt.Fprintf(&b, "  %s\n", f)
	}
	return b.String()
}

// Verify walks the whole store: the ledger chain (recomputing Prev
// links and Merkle roots from raw bytes), every referenced artifact
// (content-hashed), every ref, every object, and leftover temps. It
// reads only — repair is Scrub's job — and keeps walking past damage
// so one corrupt blob cannot mask another.
func (s *Store) Verify() (*VerifyReport, error) {
	rep := &VerifyReport{}
	report := func(kind FindingKind, name string, severe bool, format string, args ...any) {
		rep.Findings = append(rep.Findings, Finding{
			Kind: kind, Name: name, Severe: severe, Detail: fmt.Sprintf(format, args...),
		})
	}

	// Content-check each object at most once, whichever path reaches
	// it first; referenced tracks reachability for the hygiene pass.
	checked := map[Hash]error{}
	referenced := map[Hash]bool{}
	checkObject := func(h Hash) error {
		referenced[h] = true
		if err, done := checked[h]; done {
			return err
		}
		_, err := s.Get(h)
		checked[h] = err
		return err
	}
	reportObjectErr := func(h Hash, where string, err error) {
		switch err.(type) {
		case *MissingObjectError:
			report(FindingMissingObject, h.String(), true, "referenced by %s but absent", where)
		case *CorruptObjectError:
			report(FindingCorruptObject, h.String(), true, "referenced by %s: %v", where, err)
		default:
			report(FindingCorruptObject, h.String(), true, "referenced by %s: unreadable: %v", where, err)
		}
	}

	// 1. The ledger chain.
	names, err := s.primary.List(ledgerPrefix)
	if err != nil {
		return nil, fmt.Errorf("store: listing ledger: %w", err)
	}
	var prev, prevPrev Hash
	wantSeq := 0
	for _, name := range names {
		seq, ok := parseEntryName(name)
		if !ok {
			report(FindingBadEntry, name, true, "name is not a ledger sequence number")
			continue
		}
		for wantSeq < seq {
			report(FindingChainGap, entryName(wantSeq), true, "ledger entry missing")
			wantSeq++
		}
		wantSeq = seq + 1
		rep.Entries++
		raw, err := s.primary.Get(name)
		if err != nil {
			report(FindingBadEntry, name, true, "unreadable: %v", err)
			continue
		}
		var m Manifest
		if err := json.Unmarshal(raw, &m); err != nil {
			report(FindingBadEntry, name, true, "undecodable: %v", err)
			prevPrev, prev = prev, HashOf(raw) // still chain over the stored bytes
			continue
		}
		if m.Seq != seq {
			report(FindingBadEntry, name, true, "recorded seq %d disagrees with name", m.Seq)
		}
		if m.Prev != prev {
			report(FindingChainBreak, name, true,
				"prev %s, but previous entry's bytes hash to %s", m.Prev.Short(), prev.Short())
		}
		hashes := make([]Hash, len(m.Artifacts))
		for i, a := range m.Artifacts {
			hashes[i] = a.Hash
		}
		if root := MerkleRoot(hashes); root != m.Root {
			report(FindingMerkleMismatch, name, true,
				"root %s, recomputed %s", m.Root.Short(), root.Short())
		}
		for _, a := range m.Artifacts {
			where := fmt.Sprintf("%s artifact %q", name, a.Name)
			if err := checkObject(a.Hash); err != nil {
				reportObjectErr(a.Hash, where, err)
				continue
			}
			if data, err := s.primary.Get(objectName(a.Hash)); err == nil && int64(len(data)) != a.Size {
				report(FindingSizeMismatch, a.Hash.String(), true,
					"%s records %d bytes, object holds %d", where, a.Size, len(data))
			}
		}
		prevPrev, prev = prev, HashOf(raw)
	}

	// 1b. The chain anchor. The Prev links pin every entry except the
	// newest; the anchor pins that one. A crash between an entry commit
	// and its anchor update leaves the anchor lagging by exactly one
	// entry — tolerated as informational — but anything else (absent
	// with a multi-entry ledger, unparsable, or naming some other hash)
	// means the chain tail cannot be trusted.
	s.verifyAnchor(report, rep.Entries, prev, prevPrev)

	// 2. Refs.
	refs, err := s.Refs("")
	if err != nil {
		return nil, fmt.Errorf("store: listing refs: %w", err)
	}
	rep.Refs = len(refs)
	for _, r := range refs {
		if r.Err != nil {
			report(FindingBadRef, r.Name, true, "%v", r.Err)
			continue
		}
		if err := checkObject(r.Hash); err != nil {
			reportObjectErr(r.Hash, "ref "+r.Name, err)
		}
	}

	// 3. Every object on disk, including ones nothing references
	//    (bit rot does not care whether anything points at the blob).
	objNames, err := s.primary.List("objects/")
	if err != nil {
		return nil, fmt.Errorf("store: listing objects: %w", err)
	}
	for _, name := range objNames {
		h, ok := parseObjectName(name)
		if !ok {
			report(FindingAlienObject, name, true, "not a well-formed content address")
			continue
		}
		rep.Objects++
		wasReferenced := referenced[h]
		if err := checkObject(h); err != nil {
			if wasReferenced {
				continue // already reported via its reference
			}
			reportObjectErr(h, "objects walk", err)
			continue
		}
		if !wasReferenced {
			report(FindingUnreferencedObject, h.String(), false,
				"no ledger entry or ref reaches it (gc candidate)")
		}
	}

	// 4. Crashed-writer leftovers.
	temps, err := s.primary.Temps()
	if err != nil {
		return nil, fmt.Errorf("store: listing temps: %w", err)
	}
	for _, t := range temps {
		report(FindingOrphanTemp, t, false, "leftover temp from an interrupted write")
	}
	return rep, nil
}

// verifyAnchor checks the chain anchor against the recomputed chain
// head (the hash of the newest entry's stored bytes) and its
// predecessor. head/prevHead come from the chain walk, so this is a
// disk-vs-disk comparison — the in-memory head plays no part.
func (s *Store) verifyAnchor(report func(FindingKind, string, bool, string, ...any), entries int, head, prevHead Hash) {
	raw, err := s.primary.Get(anchorName)
	if err != nil {
		switch {
		case entries == 0:
			// An empty ledger has no anchor; nothing to check.
		case entries == 1:
			// A crash on the very first anchor write leaves no anchor at
			// all — the one shape of "absent" that is a crash window
			// rather than damage.
			report(FindingStaleAnchor, anchorName, false,
				"absent with a single-entry ledger (crash window after the first append)")
		default:
			report(FindingBadAnchor, anchorName, true,
				"absent with %d ledger entries: %v", entries, err)
		}
		return
	}
	if entries == 0 {
		report(FindingBadAnchor, anchorName, true, "anchor exists but the ledger is empty")
		return
	}
	h, err := ParseHash(strings.TrimSpace(string(raw)))
	if err != nil {
		report(FindingBadAnchor, anchorName, true, "unparsable: %v", err)
		return
	}
	switch h {
	case head:
		// Anchored exactly at the tail: the expected steady state.
	case prevHead:
		report(FindingStaleAnchor, anchorName, false,
			"lags the chain by one entry (crash window); the next append or scrub advances it")
	default:
		report(FindingBadAnchor, anchorName, true,
			"anchors %s, but the newest entry's bytes hash to %s — the chain tail cannot be trusted",
			h.Short(), head.Short())
	}
}
