package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// populate commits a small campaign-shaped history: nSeg segments,
// each putting one checkpoint blob, setting a ref, and appending a
// ledger entry. Returns the checkpoint hashes.
func populate(t *testing.T, s *Store, run string, nSeg int) []Hash {
	t.Helper()
	var hashes []Hash
	for i := 0; i < nSeg; i++ {
		data := []byte(fmt.Sprintf("run %s checkpoint %d payload", run, i))
		h, err := s.Put(data)
		if err != nil {
			t.Fatalf("Put seg %d: %v", i, err)
		}
		name := fmt.Sprintf("ckpt-%09d", i)
		if err := s.SetRef("runs/"+run+"/"+name, h); err != nil {
			t.Fatalf("SetRef seg %d: %v", i, err)
		}
		if _, err := s.Append(Manifest{
			Run: run, Step: i,
			Artifacts: []Artifact{{Name: name, Role: "checkpoint", Hash: h, Size: int64(len(data))}},
		}); err != nil {
			t.Fatalf("Append seg %d: %v", i, err)
		}
		hashes = append(hashes, h)
	}
	return hashes
}

func wantFinding(t *testing.T, rep *VerifyReport, kind FindingKind, nameFrag string) {
	t.Helper()
	for _, f := range rep.Findings {
		if f.Kind == kind && strings.Contains(f.Name, nameFrag) {
			return
		}
	}
	t.Fatalf("no %s finding matching %q in:\n%s", kind, nameFrag, rep)
}

func TestVerifyCleanStore(t *testing.T) {
	s, _ := newTestStore(t)
	populate(t, s, "a", 3)
	rep, err := s.Verify()
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !rep.Clean() || len(rep.Findings) != 0 {
		t.Fatalf("clean store yields findings:\n%s", rep)
	}
	if rep.Entries != 3 || rep.Objects != 3 || rep.Refs != 3 {
		t.Fatalf("counts = %d/%d/%d, want 3/3/3", rep.Entries, rep.Objects, rep.Refs)
	}
}

func TestVerifyDetectsBitRot(t *testing.T) {
	s, b := newTestStore(t)
	hashes := populate(t, s, "a", 3)
	flipBit(filepath.Join(b.Root(), filepath.FromSlash(objectName(hashes[1]))), 5)
	rep, err := s.Verify()
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	wantFinding(t, rep, FindingCorruptObject, hashes[1].String())
	if rep.Severe() == 0 {
		t.Fatal("bit rot not severe")
	}
}

func TestVerifyDetectsMissingObject(t *testing.T) {
	s, b := newTestStore(t)
	hashes := populate(t, s, "a", 2)
	if err := b.Remove(objectName(hashes[0])); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	rep, _ := s.Verify()
	wantFinding(t, rep, FindingMissingObject, hashes[0].String())
}

func TestVerifyDetectsChainBreak(t *testing.T) {
	s, b := newTestStore(t)
	populate(t, s, "a", 3)
	// Tamper with entry 1 in place: entry 2's Prev no longer matches.
	path := filepath.Join(b.Root(), "ledger", "000000001")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	raw = []byte(strings.Replace(string(raw), `"step": 1`, `"step": 7`, 1))
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	rep, _ := s.Verify()
	wantFinding(t, rep, FindingChainBreak, "ledger/000000002")
}

func TestVerifyDetectsChainGap(t *testing.T) {
	s, b := newTestStore(t)
	populate(t, s, "a", 3)
	if err := b.Remove("ledger/000000001"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	rep, _ := s.Verify()
	wantFinding(t, rep, FindingChainGap, "ledger/000000001")
	// The gap also breaks the next entry's Prev link.
	wantFinding(t, rep, FindingChainBreak, "ledger/000000002")
}

func TestVerifyDetectsMerkleMismatch(t *testing.T) {
	s, b := newTestStore(t)
	hashes := populate(t, s, "a", 1)
	// Swap the recorded artifact hash for another valid object's: the
	// entry still decodes, the object exists, but the root is wrong.
	other, err := s.Put([]byte("innocent bystander"))
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	path := filepath.Join(b.Root(), "ledger", "000000000")
	raw, _ := os.ReadFile(path)
	swapped := strings.Replace(string(raw), hashes[0].String(), other.String(), 1)
	if swapped == string(raw) {
		t.Fatal("tamper had no effect")
	}
	if err := os.WriteFile(path, []byte(swapped), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	rep, _ := s.Verify()
	wantFinding(t, rep, FindingMerkleMismatch, "ledger/000000000")
}

func TestVerifyDetectsSizeMismatch(t *testing.T) {
	s, b := newTestStore(t)
	populate(t, s, "a", 1)
	path := filepath.Join(b.Root(), "ledger", "000000000")
	raw, _ := os.ReadFile(path)
	tampered := strings.Replace(string(raw), `"size": `, `"size": 9`, 1)
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	rep, _ := s.Verify()
	wantFinding(t, rep, FindingSizeMismatch, "")
}

func TestVerifyDetectsBadRefAndOrphans(t *testing.T) {
	s, b := newTestStore(t)
	populate(t, s, "a", 1)
	if err := b.Put("refs/runs/a/bogus", []byte("not a hash\n")); err != nil {
		t.Fatalf("Put ref: %v", err)
	}
	// An unreferenced object and an orphan temp are hygiene notes,
	// not integrity damage.
	if _, err := s.Put([]byte("unreferenced")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := os.WriteFile(filepath.Join(b.Root(), "objects", "deadbeef.tmp-123"), []byte("x"), 0o644); err != nil {
		t.Fatalf("WriteFile temp: %v", err)
	}
	rep, _ := s.Verify()
	wantFinding(t, rep, FindingBadRef, "runs/a/bogus")
	wantFinding(t, rep, FindingUnreferencedObject, "")
	wantFinding(t, rep, FindingOrphanTemp, "deadbeef.tmp-123")
	if rep.Severe() != 1 {
		t.Fatalf("Severe = %d, want 1 (only the bad ref):\n%s", rep.Severe(), rep)
	}
}

func TestVerifyDetectsAlienObject(t *testing.T) {
	s, b := newTestStore(t)
	populate(t, s, "a", 1)
	if err := b.Put("objects/zz/zznotahash", []byte("alien")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	rep, _ := s.Verify()
	wantFinding(t, rep, FindingAlienObject, "objects/zz/zznotahash")
}

// TestFaultMatrixDetection is the package-level half of the
// fault-matrix gate: for every fault kind at every op of a
// campaign-shaped write sequence, any damage the fault leaves behind
// is either surfaced as a typed error at Put time (crash kinds,
// ENOSPC) or detected by Verify as a severe finding (silent bit rot).
// 100% detection, no fault kind exempt.
func TestFaultMatrixDetection(t *testing.T) {
	kinds := []FaultKind{FaultTornWrite, FaultBitFlip, FaultENOSPC, FaultCrashBeforeRename, FaultCrashAfterRename}
	const nSeg = 3
	// Each segment issues 4 backend Puts: blob, ref, ledger entry, and
	// the chain anchor the Append rewrites.
	for _, kind := range kinds {
		for op := 0; op < nSeg*4; op++ {
			t.Run(fmt.Sprintf("%s-op%d", kind, op), func(t *testing.T) {
				s, b := newTestStore(t)
				plan := NewFaultPlan([]Fault{{Op: op, Kind: kind, Byte: 4}})
				b.SetFaults(plan)

				typedErr := false
				for i := 0; i < nSeg && !typedErr; i++ {
					data := []byte(fmt.Sprintf("checkpoint %d payload", i))
					h, err := s.Put(data)
					if err == nil {
						name := fmt.Sprintf("ckpt-%09d", i)
						err = s.SetRef("runs/m/"+name, h)
						if err == nil {
							_, err = s.Append(Manifest{Run: "m", Step: i,
								Artifacts: []Artifact{{Name: name, Role: "checkpoint", Hash: h, Size: int64(len(data))}}})
						}
					}
					if err != nil {
						if !isTypedStoreErr(err) {
							t.Fatalf("seg %d error not typed: %v", i, err)
						}
						typedErr = true
					}
				}

				fired := plan.Fired()
				if len(fired) != 1 {
					t.Fatalf("fired %d faults, want 1", len(fired))
				}
				switch kind {
				case FaultENOSPC, FaultTornWrite, FaultCrashBeforeRename, FaultCrashAfterRename:
					if !typedErr {
						t.Fatalf("%s fired without a typed error", kind)
					}
				case FaultBitFlip:
					if typedErr {
						t.Fatal("bit-flip must be silent at write time")
					}
					// Silent rot must be caught by verification. Note
					// the flip may hit a blob, a ref, a ledger entry
					// (including the tail, which only the anchor
					// pins), or the anchor itself — all must be
					// detected.
					s2, err := Open(b)
					if err != nil {
						// A flipped ledger head can make Open itself
						// refuse — that is detection too.
						return
					}
					rep, err := s2.Verify()
					if err != nil {
						t.Fatalf("Verify: %v", err)
					}
					// One exception: a flip on a non-final anchor write
					// is overwritten whole by the next Append — no
					// damage remains to detect. Every other target is
					// write-once, so its rot must surface.
					healedByOverwrite := fired[0].Name == anchorName && op != nSeg*4-1
					if rep.Severe() == 0 && !healedByOverwrite {
						t.Fatalf("bit-flip on %s undetected:\n%s", fired[0].Name, rep)
					}
				}
			})
		}
	}
}

// TestVerifyDetectsTailTamper: a flip inside a string value of the
// *newest* ledger entry leaves it decodable with every Prev link
// consistent — no interior check can see it. The chain anchor is the
// only witness, and it must testify.
func TestVerifyDetectsTailTamper(t *testing.T) {
	s, b := newTestStore(t)
	populate(t, s, "a", 2)
	path := filepath.Join(b.Root(), "ledger", "000000001")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	tampered := strings.Replace(string(raw), `"run": "a"`, `"run": "z"`, 1)
	if tampered == string(raw) {
		t.Fatal("tamper had no effect")
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	rep, _ := s.Verify()
	wantFinding(t, rep, FindingBadAnchor, anchorName)
	if rep.Severe() != 1 {
		t.Fatalf("Severe = %d, want 1 (the anchor alone catches a tail tamper):\n%s", rep.Severe(), rep)
	}
}

// TestVerifyStaleAnchorIsInformational: an anchor lagging by exactly
// one entry is the crash window between an entry commit and its anchor
// update — reported, but not integrity damage.
func TestVerifyStaleAnchorIsInformational(t *testing.T) {
	s, b := newTestStore(t)
	populate(t, s, "a", 2)
	raw, err := b.Get("ledger/000000000")
	if err != nil {
		t.Fatalf("Get entry 0: %v", err)
	}
	if err := b.Put(anchorName, []byte(HashOf(raw).String()+"\n")); err != nil {
		t.Fatalf("rewinding anchor: %v", err)
	}
	rep, _ := s.Verify()
	wantFinding(t, rep, FindingStaleAnchor, anchorName)
	if rep.Severe() != 0 {
		t.Fatalf("crash-window anchor reported severe:\n%s", rep)
	}
	// Lagging by *two* is no crash window any single failure explains:
	// that is severe.
	populate(t, s, "b", 1) // now 3 entries; re-anchored at entry 2
	if err := b.Put(anchorName, []byte(HashOf(raw).String()+"\n")); err != nil {
		t.Fatalf("rewinding anchor by two: %v", err)
	}
	rep, _ = s.Verify()
	wantFinding(t, rep, FindingBadAnchor, anchorName)
	if rep.Severe() != 1 {
		t.Fatalf("lag-2 anchor Severe = %d, want 1:\n%s", rep.Severe(), rep)
	}
}

func isTypedStoreErr(err error) bool {
	var full *DiskFullError
	var crash *CrashError
	return errors.As(err, &full) || errors.As(err, &crash)
}
