package telemetry

// The anomaly engine: streaming rules evaluated over the published
// snapshots and the run's event timeline. Alerts latch — a rule fires
// one alert, and further triggers only bump its count — so a sick run
// produces a short diagnosis, not an alert flood. Fired alerts are
// appended to the shared mpi.EventLog as telemetry.alert events by the
// plane, which routes them to the SSE stream, the post-mortem and the
// run report for free.

import (
	"fmt"

	"repro/internal/mpi"
)

// Rule names, stable identifiers for /metrics labels and assertions.
const (
	RuleRankDead        = "rank-dead"
	RuleRetransmitStorm = "retransmit-storm"
	RuleHBFlap          = "hb-flap"
	RuleEventDrops      = "event-drops"
	RuleSpanDrops       = "span-drops"
	RuleDTCollapse      = "dt-collapse"
	RuleDivBGrowth      = "divb-growth"
	RuleEnergyDrift     = "energy-drift"
)

// Rules are the anomaly thresholds. Zero fields select defaults; a
// negative value disables that rule.
type Rules struct {
	// DivBGrowth fires when a rank's |div B| grows by this factor over
	// its retained gauge history (default 100; the solenoidal cleaner
	// holds divB flat in a healthy run, so two orders of magnitude is
	// a real departure).
	DivBGrowth float64
	// EnergyDriftFrac fires when the total energy drifts from its
	// first observed value by this fraction (default 0.5).
	EnergyDriftFrac float64
	// DTCollapse fires when a published dt falls to within this factor
	// of the campaign's MinDT floor (default 2; needs MinDT > 0).
	DTCollapse float64
	// RetransmitStorm fires when one evaluation consumes at least this
	// many new xport.retransmit events (default 10).
	RetransmitStorm int
	// HBFlap fires after this many suspect→clear heartbeat cycles
	// (default 2: one clear is a hiccup, repeats are flapping).
	HBFlap int
}

func (r Rules) withDefaults() Rules {
	//yyvet:ignore float-eq zero-valued rule thresholds mean unset; defaulting keys on the exact zero value
	if r.DivBGrowth == 0 {
		r.DivBGrowth = 100
	}
	//yyvet:ignore float-eq zero means unset
	if r.EnergyDriftFrac == 0 {
		r.EnergyDriftFrac = 0.5
	}
	//yyvet:ignore float-eq zero means unset
	if r.DTCollapse == 0 {
		r.DTCollapse = 2
	}
	if r.RetransmitStorm == 0 {
		r.RetransmitStorm = 10
	}
	if r.HBFlap == 0 {
		r.HBFlap = 2
	}
	return r
}

// Alert is one latched rule firing.
type Alert struct {
	// Rule is the rule name (Rule* constants).
	Rule string
	// Detail is the human-readable trigger account.
	Detail string
	// Step is the freshest published step when the rule first fired.
	Step int64
	// Count is how many evaluations have re-triggered the rule since.
	Count int64
}

func (a Alert) String() string {
	if a.Count > 1 {
		return fmt.Sprintf("%-16s step=%-6d %s (x%d)", a.Rule, a.Step, a.Detail, a.Count)
	}
	return fmt.Sprintf("%-16s step=%-6d %s", a.Rule, a.Step, a.Detail)
}

// divbTrack is one rank's retained |div B| extrema, fed only when the
// published value changes (Diagnose cadence, not step cadence).
type divbTrack struct {
	last, min, max float64
	seen           bool
}

// engine is the rule evaluator. All state is guarded by the owning
// plane's mutex.
type engine struct {
	rules Rules
	minDT float64

	cursor int64            // event-log consumption cursor (total index)
	kinds  map[string]int64 // cumulative event count per kind

	divb   map[int]*divbTrack
	e0     float64 // first observed total energy
	e0set  bool
	latest Snapshot // freshest snapshot seen (by step)

	fired map[string]*Alert // latch: rule -> alert (pointers into order)
	order []*Alert
}

func newEngine(rules Rules) *engine {
	return &engine{
		rules: rules.withDefaults(),
		kinds: map[string]int64{},
		divb:  map[int]*divbTrack{},
		fired: map[string]*Alert{},
	}
}

// kindCounts copies the cumulative per-kind event counts (for /metrics).
func (e *engine) kindCounts() map[string]int64 {
	out := make(map[string]int64, len(e.kinds))
	for k, v := range e.kinds {
		out[k] = v
	}
	return out
}

// evaluate consumes new events, folds in the snapshots, and returns
// the alerts that fired for the first time this round.
func (e *engine) evaluate(snaps map[int]Snapshot, events *mpi.EventLog) []Alert {
	newRetransmits := e.consume(events)

	var spanDrops int64
	for _, s := range snaps {
		if s.Step >= e.latest.Step {
			e.latest = s
		}
		spanDrops += s.SpanDropped
	}
	e.trackDivB(snaps)
	step := e.latest.Step

	var fired []Alert
	trigger := func(rule, detail string) {
		if a := e.fired[rule]; a != nil {
			a.Count++
			return
		}
		a := &Alert{Rule: rule, Detail: detail, Step: step, Count: 1}
		e.fired[rule] = a
		e.order = append(e.order, a)
		fired = append(fired, *a)
	}

	if n := e.kinds["hb.confirm"] + e.kinds["fault.kill"] + e.kinds["fault.kill-silent"]; n > 0 {
		trigger(RuleRankDead, fmt.Sprintf("%d rank death(s) confirmed (heartbeat or scripted kill)", n))
	}
	if e.rules.RetransmitStorm > 0 && newRetransmits >= int64(e.rules.RetransmitStorm) {
		trigger(RuleRetransmitStorm, fmt.Sprintf("%d retransmission(s) in one evaluation window (threshold %d)",
			newRetransmits, e.rules.RetransmitStorm))
	}
	if e.rules.HBFlap > 0 && e.kinds["hb.clear"] >= int64(e.rules.HBFlap) {
		trigger(RuleHBFlap, fmt.Sprintf("%d heartbeat suspect→clear cycle(s) (threshold %d) — a rank keeps going quiet",
			e.kinds["hb.clear"], e.rules.HBFlap))
	}
	if d := events.Dropped(); d > 0 {
		trigger(RuleEventDrops, fmt.Sprintf("%d event(s) overwritten in the bounded EventLog ring", d))
	}
	if spanDrops > 0 {
		trigger(RuleSpanDrops, fmt.Sprintf("%d span record(s) dropped from full obs rings — raise obs.Config.SpanCap", spanDrops))
	}
	if e.rules.DTCollapse > 0 && e.minDT > 0 && e.latest.DT > 0 && e.latest.DT <= e.rules.DTCollapse*e.minDT {
		trigger(RuleDTCollapse, fmt.Sprintf("dt %.3e within %.1fx of the %.3e MinDT floor — blow-up retries are shrinking the step",
			e.latest.DT, e.rules.DTCollapse, e.minDT))
	}
	if e.rules.DivBGrowth > 0 {
		for rank, t := range e.divb {
			if t.min > 0 && t.max >= e.rules.DivBGrowth*t.min {
				trigger(RuleDivBGrowth, fmt.Sprintf("rank %d |div B| grew %.3e -> %.3e (>= %.0fx) — solenoidal constraint degrading",
					rank, t.min, t.max, e.rules.DivBGrowth))
				break
			}
		}
	}
	if e.rules.EnergyDriftFrac > 0 {
		total := e.latest.KineticE + e.latest.MagneticE + e.latest.InternalE
		//yyvet:ignore float-eq the exact zero of an unpublished snapshot means no baseline yet
		if !e.e0set && total != 0 {
			e.e0, e.e0set = total, true
		}
		if e.e0set {
			drift := (total - e.e0) / e.e0
			if drift < 0 {
				drift = -drift
			}
			if drift > e.rules.EnergyDriftFrac {
				trigger(RuleEnergyDrift, fmt.Sprintf("total energy drifted %.1f%% from its initial %.6g (threshold %.0f%%)",
					100*drift, e.e0, 100*e.rules.EnergyDriftFrac))
			}
		}
	}
	return fired
}

// consume folds the event log's new entries into the per-kind counters
// and returns the number of new retransmit events this round.
func (e *engine) consume(events *mpi.EventLog) int64 {
	if events == nil {
		return 0
	}
	evs, total := events.Tail(e.cursor)
	e.cursor = total
	var retransmits int64
	for _, ev := range evs {
		e.kinds[ev.Kind]++
		if ev.Kind == "xport.retransmit" {
			retransmits++
		}
	}
	return retransmits
}

// trackDivB updates each rank's |div B| extrema, sampling only value
// changes so the window reflects Diagnose updates, not step repeats.
func (e *engine) trackDivB(snaps map[int]Snapshot) {
	for rank, s := range snaps {
		//yyvet:ignore float-eq the exact zero of a pre-Diagnose snapshot means no gauge yet
		if s.DivB == 0 {
			continue
		}
		t := e.divb[rank]
		if t == nil {
			t = &divbTrack{}
			e.divb[rank] = t
		}
		//yyvet:ignore float-eq gauge republished unchanged between Diagnose calls; sampling keys on exact repeats
		if t.seen && s.DivB == t.last {
			continue
		}
		if !t.seen || s.DivB < t.min {
			t.min = s.DivB
		}
		if !t.seen || s.DivB > t.max {
			t.max = s.DivB
		}
		t.last, t.seen = s.DivB, true
	}
}
