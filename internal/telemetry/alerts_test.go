package telemetry

import (
	"strings"
	"testing"

	"repro/internal/mpi"
)

// fireOnce runs one evaluation and returns the rules that fired fresh.
func fireOnce(e *engine, snaps map[int]Snapshot, events *mpi.EventLog) []string {
	var rules []string
	for _, a := range e.evaluate(snaps, events) {
		rules = append(rules, a.Rule)
	}
	return rules
}

func wantRule(t *testing.T, fired []string, rule string) {
	t.Helper()
	for _, r := range fired {
		if r == rule {
			return
		}
	}
	t.Fatalf("rule %s did not fire; fired = %v", rule, fired)
}

// TestRuleRankDead: any confirmed rank death (scripted or heartbeat)
// raises the alarm.
func TestRuleRankDead(t *testing.T) {
	for _, kind := range []string{"fault.kill", "fault.kill-silent", "hb.confirm"} {
		e := newEngine(Rules{})
		events := mpi.NewEventLog()
		events.Notef(kind, "rank=1 step=3")
		wantRule(t, fireOnce(e, nil, events), RuleRankDead)
	}
}

// TestRuleRetransmitStorm fires on a burst within one evaluation
// window, not on a cumulative trickle.
func TestRuleRetransmitStorm(t *testing.T) {
	e := newEngine(Rules{RetransmitStorm: 3})
	events := mpi.NewEventLog()
	events.Notef("xport.retransmit", "try=1")
	events.Notef("xport.retransmit", "try=2")
	if fired := fireOnce(e, nil, events); len(fired) != 0 {
		t.Fatalf("2 < 3 retransmits fired %v", fired)
	}
	for i := 0; i < 3; i++ {
		events.Notef("xport.retransmit", "try=%d", i)
	}
	wantRule(t, fireOnce(e, nil, events), RuleRetransmitStorm)
}

// TestRuleHBFlap: repeated suspect→clear cycles are flapping.
func TestRuleHBFlap(t *testing.T) {
	e := newEngine(Rules{HBFlap: 2})
	events := mpi.NewEventLog()
	events.Notef("hb.clear", "rank=1")
	if fired := fireOnce(e, nil, events); len(fired) != 0 {
		t.Fatalf("one clear fired %v", fired)
	}
	events.Notef("hb.clear", "rank=1")
	wantRule(t, fireOnce(e, nil, events), RuleHBFlap)
}

// TestRuleEventDrops: an overflowing ring is lost forensic data.
func TestRuleEventDrops(t *testing.T) {
	e := newEngine(Rules{})
	events := mpi.NewEventLogSize(2)
	for i := 0; i < 5; i++ {
		events.Notef("note", "n=%d", i)
	}
	wantRule(t, fireOnce(e, nil, events), RuleEventDrops)
}

// TestRuleSpanDrops: a full obs span ring is lost trace data.
func TestRuleSpanDrops(t *testing.T) {
	e := newEngine(Rules{})
	snaps := map[int]Snapshot{0: {Step: 5, SpanDropped: 12}}
	wantRule(t, fireOnce(e, snaps, nil), RuleSpanDrops)
}

// TestRuleDTCollapse: a dt hugging the MinDT floor means the backoff
// ladder is walking the campaign toward an abort.
func TestRuleDTCollapse(t *testing.T) {
	e := newEngine(Rules{DTCollapse: 2})
	e.minDT = 1e-6
	if fired := fireOnce(e, map[int]Snapshot{0: {Step: 1, DT: 1e-3}}, nil); len(fired) != 0 {
		t.Fatalf("healthy dt fired %v", fired)
	}
	wantRule(t, fireOnce(e, map[int]Snapshot{0: {Step: 2, DT: 1.5e-6}}, nil), RuleDTCollapse)
}

// TestRuleDivBGrowth: two orders of magnitude on |div B| means the
// solenoidal cleaner is losing.
func TestRuleDivBGrowth(t *testing.T) {
	e := newEngine(Rules{DivBGrowth: 100})
	fireOnce(e, map[int]Snapshot{0: {Step: 1, DivB: 1e-9}}, nil)
	if fired := fireOnce(e, map[int]Snapshot{0: {Step: 2, DivB: 5e-9}}, nil); len(fired) != 0 {
		t.Fatalf("5x growth fired %v", fired)
	}
	wantRule(t, fireOnce(e, map[int]Snapshot{0: {Step: 3, DivB: 2e-7}}, nil), RuleDivBGrowth)
}

// TestRuleEnergyDrift: the budget is measured against the first
// observed total.
func TestRuleEnergyDrift(t *testing.T) {
	e := newEngine(Rules{EnergyDriftFrac: 0.5})
	base := map[int]Snapshot{0: {Step: 1, KineticE: 1, MagneticE: 1, InternalE: 8}}
	if fired := fireOnce(e, base, nil); len(fired) != 0 {
		t.Fatalf("baseline fired %v", fired)
	}
	drifted := map[int]Snapshot{0: {Step: 2, KineticE: 10, MagneticE: 10, InternalE: 8}}
	wantRule(t, fireOnce(e, drifted, nil), RuleEnergyDrift)
}

// TestRulesDisabled: negative thresholds switch a rule off outright.
func TestRulesDisabled(t *testing.T) {
	e := newEngine(Rules{RetransmitStorm: -1, HBFlap: -1, EnergyDriftFrac: -1, DivBGrowth: -1, DTCollapse: -1})
	e.minDT = 1e-6
	events := mpi.NewEventLog()
	for i := 0; i < 50; i++ {
		events.Notef("xport.retransmit", "n=%d", i)
		events.Notef("hb.clear", "n=%d", i)
	}
	snaps := map[int]Snapshot{0: {Step: 2, DT: 1e-6, DivB: 1, KineticE: 100}}
	fireOnce(e, map[int]Snapshot{0: {Step: 1, DivB: 1e-9, KineticE: 1}}, nil)
	if fired := fireOnce(e, snaps, events); len(fired) != 0 {
		t.Fatalf("disabled rules fired %v", fired)
	}
}

// TestAlertLatching: a rule fires one alert; re-triggers bump its
// count instead of flooding.
func TestAlertLatching(t *testing.T) {
	e := newEngine(Rules{})
	snaps := map[int]Snapshot{0: {Step: 1, SpanDropped: 3}}
	if fired := fireOnce(e, snaps, nil); len(fired) != 1 {
		t.Fatalf("first round fired %v", fired)
	}
	for i := 0; i < 5; i++ {
		if fired := fireOnce(e, snaps, nil); len(fired) != 0 {
			t.Fatalf("latched rule re-fired %v", fired)
		}
	}
	a := e.fired[RuleSpanDrops]
	if a == nil || a.Count != 6 {
		t.Fatalf("latched alert = %+v, want count 6", a)
	}
	if !strings.Contains(a.String(), "x6") {
		t.Fatalf("String() lost the re-trigger count: %q", a.String())
	}
}

// TestPlaneEvaluateEmitsAlertEvents: a fired alert lands in the shared
// EventLog as a typed telemetry.alert event (the SSE/post-mortem path).
func TestPlaneEvaluateEmitsAlertEvents(t *testing.T) {
	p := New(Config{})
	events := mpi.NewEventLog()
	p.Attach(Campaign{Run: "test", Events: events})
	p.Rank(0).Publish(Snapshot{Step: 1, SpanDropped: 2})
	p.Evaluate()
	var got *mpi.Event
	for _, ev := range events.Events() {
		if ev.Kind == "telemetry.alert" {
			e := ev
			got = &e
		}
	}
	if got == nil {
		t.Fatalf("no telemetry.alert event in %v", events.Events())
	}
	if !strings.Contains(got.Detail, "rule="+RuleSpanDrops) {
		t.Fatalf("alert event detail %q lacks the rule", got.Detail)
	}
	if n := len(p.Alerts()); n != 1 {
		t.Fatalf("plane latched %d alerts, want 1", n)
	}
	// The engine consumes its own alert events without re-triggering
	// on them (no feedback loop).
	p.Evaluate()
	if n := len(p.Alerts()); n != 1 {
		t.Fatalf("feedback loop: %d alerts after re-evaluate", n)
	}
}
