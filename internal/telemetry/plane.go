package telemetry

// The collector side of the plane. A Plane owns the per-rank publish
// slots, the campaign progress counters, the anomaly engine and the
// alert list; the HTTP server (server.go) and the rule engine
// (alerts.go) read everything through it. Unlike publish.go this side
// may read the wall clock, allocate and lock freely — it runs on the
// driver/server goroutines, never inside a solver step.

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/store"
)

// Config sizes a Plane. The zero value selects defaults everywhere.
type Config struct {
	// Rules are the anomaly thresholds (zero fields select defaults).
	Rules Rules
	// Interval is the collector/engine tick of a served plane (default
	// 500ms). Shorter ticks sharpen rate/ETA estimates and alert
	// latency at the cost of more scrape work.
	Interval time.Duration
	// Profile disables (false stays the default: enabled) the
	// segment-boundary CPU/heap profile capture when set via
	// NoProfile. See Plane.ProfileSegments.
	NoProfile bool
}

// Campaign binds a Plane to one run's data sources. Everything is
// optional: a nil field simply withholds that family of metrics.
type Campaign struct {
	// Run names the campaign (the store run id, or a CLI label).
	Run string
	// TotalSteps is the campaign's step target, for progress and ETA.
	TotalSteps int
	// MinDT is the campaign's CFL-collapse floor, armed into the
	// dt-collapse rule (0 disables the rule).
	MinDT float64
	// Events is the run's shared fault/recovery timeline; the SSE
	// stream and the event-kind counters feed from it, and fired
	// alerts are appended to it as telemetry.alert events.
	Events *mpi.EventLog
	// Recorder supplies the live-readable obs aggregates: comm
	// histograms and the pool gauge.
	Recorder *obs.Recorder
	// Store supplies the artifact-store counters (objects, put bytes,
	// dedup hits).
	Store *store.Store
}

// sample is one (wall clock, live step) observation for the rate/ETA
// estimate.
type sample struct {
	at   time.Time
	step int64
}

// Plane is the live telemetry plane of one run. Create with New,
// bind with Attach, serve with Serve. All exported methods are
// nil-safe: a nil *Plane is telemetry off.
type Plane struct {
	cfg Config

	// Step-path-facing state: the publish slots, created on first use
	// per rank and stable thereafter.
	pubMu sync.Mutex
	pubs  map[int]*RankPub

	// Campaign progress counters, written by the driver between
	// segments and read by any scraper.
	committed  atomic.Int64
	totalSteps atomic.Int64
	segment    atomic.Int64
	attempt    atomic.Int64
	retries    atomic.Int64
	done       atomic.Bool

	// Collector state, guarded by mu.
	mu      sync.Mutex
	run     string
	events  *mpi.EventLog
	rec     *obs.Recorder
	st      *store.Store
	eng     *engine
	alerts  []Alert
	samples []sample

	srv *server
}

// New builds a Plane.
func New(cfg Config) *Plane {
	if cfg.Interval <= 0 {
		cfg.Interval = 500 * time.Millisecond
	}
	return &Plane{
		cfg:  cfg,
		pubs: map[int]*RankPub{},
		eng:  newEngine(cfg.Rules),
	}
}

// Attach binds the plane to a run's data sources; call before the run
// starts (resilience.RunCampaign calls it from Config.Telemetry).
// Nil-safe.
func (p *Plane) Attach(c Campaign) {
	if p == nil {
		return
	}
	p.mu.Lock()
	if c.Run != "" {
		p.run = c.Run
	}
	if c.Events != nil {
		p.events = c.Events
	}
	if c.Recorder != nil {
		p.rec = c.Recorder
	}
	if c.Store != nil {
		p.st = c.Store
	}
	p.eng.minDT = c.MinDT
	p.mu.Unlock()
	if c.TotalSteps > 0 {
		p.totalSteps.Store(int64(c.TotalSteps))
	}
}

// Rank returns the rank's publish slot, creating it on first use.
// Called at segment setup, not on the step path; nil-safe (a nil
// plane yields a nil *RankPub, which no-ops everywhere).
func (p *Plane) Rank(rank int) *RankPub {
	if p == nil {
		return nil
	}
	p.pubMu.Lock()
	defer p.pubMu.Unlock()
	pub := p.pubs[rank]
	if pub == nil {
		pub = &RankPub{}
		p.pubs[rank] = pub
	}
	return pub
}

// snapshots copies the latest published snapshot of every rank.
func (p *Plane) snapshots() map[int]Snapshot {
	if p == nil {
		return nil
	}
	p.pubMu.Lock()
	defer p.pubMu.Unlock()
	out := make(map[int]Snapshot, len(p.pubs))
	for rank, pub := range p.pubs {
		if s, ok := pub.Read(); ok {
			out[rank] = s
		}
	}
	return out
}

// ProfileSegments reports whether segment-boundary pprof capture is
// wanted (nil plane: no).
func (p *Plane) ProfileSegments() bool {
	return p != nil && !p.cfg.NoProfile
}

// SegmentStart records that a segment attempt began.
func (p *Plane) SegmentStart(seg, attempt int) {
	if p == nil {
		return
	}
	p.segment.Store(int64(seg))
	p.attempt.Store(int64(attempt))
}

// Commit records a committed campaign step.
func (p *Plane) Commit(step int) {
	if p == nil {
		return
	}
	p.committed.Store(int64(step))
}

// Retry counts a failed segment attempt.
func (p *Plane) Retry() {
	if p == nil {
		return
	}
	p.retries.Add(1)
}

// Finish marks the run complete and runs one final rule evaluation, so
// campaigns shorter than a collector tick still get their alerts
// before the run report is written.
func (p *Plane) Finish(step int) {
	if p == nil {
		return
	}
	p.committed.Store(int64(step))
	p.done.Store(true)
	p.Evaluate()
}

// Evaluate runs one collector pass: consume new events, feed the rule
// engine the freshest snapshots, latch and emit any alerts that fired.
// Served planes call it on every tick and scrape; tests and the
// campaign driver call it directly. Deterministic given the same
// inputs. Nil-safe.
func (p *Plane) Evaluate() {
	if p == nil {
		return
	}
	snaps := p.snapshots()
	p.mu.Lock()
	fired := p.eng.evaluate(snaps, p.events)
	p.alerts = append(p.alerts, fired...)
	events := p.events
	p.mu.Unlock()
	for _, a := range fired {
		events.Notef("telemetry.alert", "rule=%s step=%d %s", a.Rule, a.Step, a.Detail)
	}
}

// Alerts returns the alerts latched so far, in firing order.
func (p *Plane) Alerts() []Alert {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Alert, len(p.alerts))
	copy(out, p.alerts)
	return out
}

// AlertStrings renders the latched alerts one per line, for the run
// report.
func (p *Plane) AlertStrings() []string {
	alerts := p.Alerts()
	out := make([]string, 0, len(alerts))
	for _, a := range alerts {
		out = append(out, a.String())
	}
	return out
}

// Events returns the attached event log (nil when none).
func (p *Plane) Events() *mpi.EventLog {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.events
}

// tick is one collector heartbeat: sample the live step for the ETA
// estimate, then evaluate the rules.
func (p *Plane) tick() {
	live := p.liveStep()
	p.mu.Lock()
	p.samples = append(p.samples, sample{at: time.Now(), step: live})
	if len(p.samples) > 128 {
		p.samples = p.samples[len(p.samples)-64:]
	}
	p.mu.Unlock()
	p.Evaluate()
}

// liveStep is the freshest step any rank has published (falling back
// to the committed step when nothing published yet).
func (p *Plane) liveStep() int64 {
	live := p.committed.Load()
	for _, s := range p.snapshots() {
		if s.Step > live {
			live = s.Step
		}
	}
	return live
}

// rate estimates steps/sec from the retained samples (0 when unknown).
func (p *Plane) rate() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.samples) < 2 {
		return 0
	}
	first, last := p.samples[0], p.samples[len(p.samples)-1]
	dt := last.at.Sub(first.at).Seconds()
	if dt <= 0 || last.step <= first.step {
		return 0
	}
	return float64(last.step-first.step) / dt
}

// RankProgress is one rank's row in the /progress document.
type RankProgress struct {
	Rank int     `json:"rank"`
	Step int64   `json:"step"`
	DT   float64 `json:"dt"`
	DivB float64 `json:"divb"`
}

// ProgressInfo is the /progress JSON document.
type ProgressInfo struct {
	Run             string         `json:"run"`
	Done            bool           `json:"done"`
	CommittedStep   int64          `json:"committed_step"`
	LiveStep        int64          `json:"live_step"`
	TotalSteps      int64          `json:"total_steps"`
	Segment         int64          `json:"segment"`
	Attempt         int64          `json:"attempt"`
	Retries         int64          `json:"retries"`
	RateStepsPerSec float64        `json:"rate_steps_per_sec"`
	ETASec          float64        `json:"eta_sec"`
	Alerts          int            `json:"alerts"`
	Ranks           []RankProgress `json:"ranks,omitempty"`
}

// Progress builds the /progress document from the current counters and
// snapshots.
func (p *Plane) Progress() ProgressInfo {
	if p == nil {
		return ProgressInfo{}
	}
	info := ProgressInfo{
		Run:           p.runName(),
		Done:          p.done.Load(),
		CommittedStep: p.committed.Load(),
		TotalSteps:    p.totalSteps.Load(),
		Segment:       p.segment.Load(),
		Attempt:       p.attempt.Load(),
		Retries:       p.retries.Load(),
	}
	snaps := p.snapshots()
	info.LiveStep = info.CommittedStep
	for rank, s := range snaps {
		if s.Step > info.LiveStep {
			info.LiveStep = s.Step
		}
		info.Ranks = append(info.Ranks, RankProgress{Rank: rank, Step: s.Step, DT: s.DT, DivB: s.DivB})
	}
	sortRankProgress(info.Ranks)
	info.RateStepsPerSec = p.rate()
	if info.RateStepsPerSec > 0 && info.TotalSteps > info.LiveStep {
		info.ETASec = float64(info.TotalSteps-info.LiveStep) / info.RateStepsPerSec
	}
	p.mu.Lock()
	info.Alerts = len(p.alerts)
	p.mu.Unlock()
	return info
}

func (p *Plane) runName() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.run == "" {
		return "run"
	}
	return p.run
}

func sortRankProgress(rs []RankProgress) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].Rank < rs[j-1].Rank; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}
