package telemetry

// Continuous profiling: the campaign driver brackets every segment
// attempt with a CPU profile and snapshots the heap at the boundary;
// the resulting pprof blobs are committed into the run's store
// manifest next to the segment's checkpoint (see the sink's artifacts
// path in internal/resilience). Profiling is process-global and
// signal-driven — it perturbs scheduling, never arithmetic, so a
// profiled campaign stays sha256-identical to an unprofiled one (the
// same argument, and the same golden tests, as for the chaos delay
// faults).

import (
	"bytes"
	"runtime/pprof"
)

// SegProfiler is one segment's CPU profile capture. Only one CPU
// profile can run per process; when another holder (a test, a pprof
// HTTP scrape) already has it, StartSegProfile degrades to an
// inactive profiler whose Stop returns nil.
type SegProfiler struct {
	buf    bytes.Buffer
	active bool
}

// StartSegProfile begins a CPU profile for the segment, if the
// process-wide profiler is free.
func StartSegProfile() *SegProfiler {
	sp := &SegProfiler{}
	if err := pprof.StartCPUProfile(&sp.buf); err == nil {
		sp.active = true
	}
	return sp
}

// Stop ends the capture and returns the pprof bytes (nil when the
// profiler never engaged). Safe on nil and safe to call twice.
func (sp *SegProfiler) Stop() []byte {
	if sp == nil || !sp.active {
		return nil
	}
	pprof.StopCPUProfile()
	sp.active = false
	return sp.buf.Bytes()
}

// HeapProfile returns the current heap profile in pprof format.
func HeapProfile() []byte {
	var buf bytes.Buffer
	if p := pprof.Lookup("heap"); p != nil {
		p.WriteTo(&buf, 0) //nolint:errcheck — a bytes.Buffer write cannot fail
	}
	return buf.Bytes()
}
