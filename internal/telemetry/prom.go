package telemetry

// Hand-rolled Prometheus text exposition (format version 0.0.4). The
// repository is stdlib-only, and the format is simple enough that a
// writer is smaller than a client library: one HELP/TYPE pair per
// family, then `name{label="value"} number` samples, label values
// escaped per the spec.

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/obs"
)

func tagKey(comm, tag int) obs.TagKey { return obs.TagKey{Comm: comm, Tag: tag} }

type promWriter struct {
	w io.Writer
}

func (pw promWriter) family(name, typ, help string) {
	fmt.Fprintf(pw.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// sample writes one exposition line. Labels are pre-ordered pairs.
func (pw promWriter) sample(name string, labels [][2]string, v float64) {
	if len(labels) == 0 {
		fmt.Fprintf(pw.w, "%s %s\n", name, formatValue(v))
		return
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l[0])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l[1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	fmt.Fprintf(pw.w, "%s %s\n", b.String(), formatValue(v))
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// writeMetrics renders the whole plane state as one exposition
// document. Families and labeled samples come out in sorted order, so
// consecutive scrapes of a quiet plane are byte-comparable.
func (p *Plane) writeMetrics(w io.Writer) {
	pw := promWriter{w: w}
	info := p.Progress()
	snaps := p.snapshots()

	pw.family("yy_progress_committed_step", "gauge", "Last durably committed campaign step.")
	pw.sample("yy_progress_committed_step", nil, float64(info.CommittedStep))
	pw.family("yy_progress_live_step", "gauge", "Freshest step any rank has published.")
	pw.sample("yy_progress_live_step", nil, float64(info.LiveStep))
	pw.family("yy_progress_total_steps", "gauge", "Campaign step target.")
	pw.sample("yy_progress_total_steps", nil, float64(info.TotalSteps))
	pw.family("yy_progress_segment", "gauge", "Current campaign segment index.")
	pw.sample("yy_progress_segment", nil, float64(info.Segment))
	pw.family("yy_progress_retries_total", "counter", "Failed segment attempts across the campaign.")
	pw.sample("yy_progress_retries_total", nil, float64(info.Retries))
	pw.family("yy_progress_done", "gauge", "1 once the run has finished.")
	done := 0.0
	if info.Done {
		done = 1
	}
	pw.sample("yy_progress_done", nil, done)
	if info.RateStepsPerSec > 0 {
		pw.family("yy_progress_steps_per_second", "gauge", "Observed live step rate.")
		pw.sample("yy_progress_steps_per_second", nil, info.RateStepsPerSec)
	}

	// Per-rank step state, sorted by rank.
	ranks := make([]int, 0, len(snaps))
	for rank := range snaps {
		ranks = append(ranks, rank)
	}
	sort.Ints(ranks)
	if len(ranks) > 0 {
		pw.family("yy_rank_step", "gauge", "Completed steps per rank.")
		for _, rank := range ranks {
			pw.sample("yy_rank_step", rankLabel(rank), float64(snaps[rank].Step))
		}
		pw.family("yy_rank_dt", "gauge", "Last step size per rank.")
		for _, rank := range ranks {
			pw.sample("yy_rank_dt", rankLabel(rank), snaps[rank].DT)
		}
		pw.family("yy_rank_cfl", "gauge", "Last CFL number per rank (0 until the first Diagnose).")
		for _, rank := range ranks {
			pw.sample("yy_rank_cfl", rankLabel(rank), snaps[rank].CFL)
		}
		pw.family("yy_rank_divb", "gauge", "Last max |div B| per rank (0 until the first Diagnose).")
		for _, rank := range ranks {
			pw.sample("yy_rank_divb", rankLabel(rank), snaps[rank].DivB)
		}
		pw.family("yy_rank_spans", "gauge", "Spans held in each rank's obs ring.")
		for _, rank := range ranks {
			pw.sample("yy_rank_spans", rankLabel(rank), float64(snaps[rank].Spans))
		}
		pw.family("yy_rank_span_drops_total", "counter", "Spans overwritten in each rank's full obs ring.")
		for _, rank := range ranks {
			pw.sample("yy_rank_span_drops_total", rankLabel(rank), float64(snaps[rank].SpanDropped))
		}
		// The reduced diagnostics are identical on every rank; export
		// the freshest rank's copy once.
		latest := snaps[ranks[0]]
		for _, rank := range ranks {
			if snaps[rank].Step > latest.Step {
				latest = snaps[rank]
			}
		}
		pw.family("yy_energy", "gauge", "Globally reduced energy components at the last Diagnose.")
		pw.sample("yy_energy", [][2]string{{"component", "kinetic"}}, latest.KineticE)
		pw.sample("yy_energy", [][2]string{{"component", "magnetic"}}, latest.MagneticE)
		pw.sample("yy_energy", [][2]string{{"component", "internal"}}, latest.InternalE)
		pw.family("yy_mass", "gauge", "Globally reduced total mass at the last Diagnose.")
		pw.sample("yy_mass", nil, latest.Mass)
	}

	p.writeEventMetrics(pw)
	p.writeObsMetrics(pw)
	p.writeStoreMetrics(pw)
}

func rankLabel(rank int) [][2]string {
	return [][2]string{{"rank", strconv.Itoa(rank)}}
}

func (p *Plane) writeEventMetrics(pw promWriter) {
	p.mu.Lock()
	events := p.events
	kinds := p.eng.kindCounts()
	alerts := make([]Alert, 0, len(p.eng.order))
	for _, a := range p.eng.order {
		alerts = append(alerts, *a)
	}
	p.mu.Unlock()

	pw.family("yy_events_total", "counter", "Events ever appended to the run timeline.")
	pw.sample("yy_events_total", nil, float64(events.Total()))
	pw.family("yy_events_dropped_total", "counter", "Events overwritten in the bounded EventLog ring.")
	pw.sample("yy_events_dropped_total", nil, float64(events.Dropped()))
	if len(kinds) > 0 {
		names := make([]string, 0, len(kinds))
		for k := range kinds {
			names = append(names, k)
		}
		sort.Strings(names)
		pw.family("yy_event_kind_total", "counter", "Events consumed by the collector, by kind (retransmits, heartbeat transitions, faults).")
		for _, k := range names {
			pw.sample("yy_event_kind_total", [][2]string{{"kind", k}}, float64(kinds[k]))
		}
	}
	pw.family("yy_alerts_total", "counter", "Anomaly-rule firings (latched; the count is re-trigger evaluations).")
	sort.Slice(alerts, func(i, j int) bool { return alerts[i].Rule < alerts[j].Rule })
	for _, a := range alerts {
		pw.sample("yy_alerts_total", [][2]string{{"rule", a.Rule}}, float64(a.Count))
	}
}

func (p *Plane) writeObsMetrics(pw promWriter) {
	p.mu.Lock()
	rec := p.rec
	p.mu.Unlock()
	if rec == nil {
		return
	}
	stats := rec.TagStats()
	keys := make([]struct{ comm, tag int }, 0, len(stats))
	for k := range stats {
		keys = append(keys, struct{ comm, tag int }{k.Comm, k.Tag})
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].comm != keys[j].comm {
			return keys[i].comm < keys[j].comm
		}
		return keys[i].tag < keys[j].tag
	})
	if len(keys) > 0 {
		tagLabels := func(comm, tag int) [][2]string {
			return [][2]string{{"comm", strconv.Itoa(comm)}, {"tag", strconv.Itoa(tag)}}
		}
		pw.family("yy_comm_msgs_total", "counter", "Messages delivered per (comm, tag) stream.")
		for _, k := range keys {
			st := stats[tagKey(k.comm, k.tag)]
			pw.sample("yy_comm_msgs_total", tagLabels(k.comm, k.tag), float64(st.Msgs.Load()))
		}
		pw.family("yy_comm_bytes_total", "counter", "Bytes delivered per (comm, tag) stream.")
		for _, k := range keys {
			st := stats[tagKey(k.comm, k.tag)]
			pw.sample("yy_comm_bytes_total", tagLabels(k.comm, k.tag), float64(st.Bytes.Load()))
		}
		pw.family("yy_comm_wait_seconds_mean", "gauge", "Mean receive-wait per (comm, tag) stream.")
		for _, k := range keys {
			st := stats[tagKey(k.comm, k.tag)]
			pw.sample("yy_comm_wait_seconds_mean", tagLabels(k.comm, k.tag), st.Wait.Mean()/1e9)
		}
	}
	pool := rec.Pool()
	if pool != nil && pool.Workers.Load() > 0 {
		pw.family("yy_pool_utilization", "gauge", "Worker-pool busy fraction (busy / (wall x workers)).")
		pw.sample("yy_pool_utilization", nil, pool.Utilization())
		pw.family("yy_pool_workers", "gauge", "Worker-pool width.")
		pw.sample("yy_pool_workers", nil, float64(pool.Workers.Load()))
	}
}

func (p *Plane) writeStoreMetrics(pw promWriter) {
	p.mu.Lock()
	st := p.st
	p.mu.Unlock()
	if st == nil {
		return
	}
	stats := st.Stats()
	pw.family("yy_store_objects", "gauge", "Blobs indexed in the content-addressed store.")
	pw.sample("yy_store_objects", nil, float64(stats.Objects))
	pw.family("yy_store_put_bytes_total", "counter", "Bytes newly committed to the store this process.")
	pw.sample("yy_store_put_bytes_total", nil, float64(stats.PutBytes))
	pw.family("yy_store_dedup_hits_total", "counter", "Puts satisfied by an existing identical blob this process.")
	pw.sample("yy_store_dedup_hits_total", nil, float64(stats.DedupHits))
	pw.family("yy_store_dedup_bytes_total", "counter", "Bytes not rewritten thanks to content-address dedup this process.")
	pw.sample("yy_store_dedup_bytes_total", nil, float64(stats.DedupBytes))
}
