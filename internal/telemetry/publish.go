// Package telemetry is the live, pull-based observability plane of a
// running campaign: each rank publishes a fixed-size snapshot of its
// step state into a seqlock-style double buffer that a collector on
// the driver side reads without any rank-to-rank communication, and an
// embedded HTTP server exposes the aggregate as Prometheus text
// exposition (/metrics), a server-sent event stream of the run's fault
// timeline (/events), campaign progress JSON (/progress) and the
// standard pprof endpoints (/debug/pprof). An anomaly engine evaluates
// streaming rules over the same data and emits typed telemetry.alert
// events into the shared mpi.EventLog, so alarms reach the SSE stream,
// the post-mortem and the run report through the one timeline that
// already exists.
//
// Design constraints, inherited from internal/obs and enforced by the
// det-purity analyzer and the BENCH_obs.json gate:
//
//  1. The publisher side (this file) runs inside the solver step on the
//     rank goroutines of a deterministic package. It must not read the
//     wall clock, allocate, take locks, or communicate — it performs a
//     fixed number of atomic word stores into memory the publisher
//     owns. Everything clock- or network-flavored lives on the
//     collector/server side (plane.go, server.go, alerts.go).
//  2. Nil is off: a nil *RankPub Publish is a no-op, so untelemetrized
//     runs pay one nil check per step.
//  3. Reads never block writes. The collector copies whichever slot the
//     sequence word proves stable; a torn read is detected by the
//     re-check and retried, never locked against.
package telemetry

import (
	"math"
	"sync/atomic"
)

// Snapshot is one rank's published step state: everything the live
// plane wants at step granularity, flattened to fixed-size words so
// publishing is a handful of atomic stores. Values that already live
// in concurrency-safe obs structures (comm histograms, pool gauges)
// are not duplicated here — the collector reads those directly.
type Snapshot struct {
	// Step is the rank's completed step count; DT the step size it
	// last advanced with.
	Step int64
	DT   float64
	// CFL and DivB are the rank's latest diagnostic gauges (0 until
	// the first Diagnose).
	CFL  float64
	DivB float64
	// Mass and the energies are the globally reduced diagnostics the
	// rank last computed — identical on every rank by construction.
	Mass      float64
	KineticE  float64
	MagneticE float64
	InternalE float64
	MaxV      float64
	MaxB      float64
	// Spans and SpanDropped mirror the rank's obs span ring occupancy
	// and overflow count.
	Spans       int64
	SpanDropped int64
}

// snapWords is the flattened word count of Snapshot; encode and decode
// must visit every field exactly once in the same order.
const snapWords = 12

func (s *Snapshot) encode(w *[snapWords]uint64) {
	w[0] = uint64(s.Step)
	w[1] = math.Float64bits(s.DT)
	w[2] = math.Float64bits(s.CFL)
	w[3] = math.Float64bits(s.DivB)
	w[4] = math.Float64bits(s.Mass)
	w[5] = math.Float64bits(s.KineticE)
	w[6] = math.Float64bits(s.MagneticE)
	w[7] = math.Float64bits(s.InternalE)
	w[8] = math.Float64bits(s.MaxV)
	w[9] = math.Float64bits(s.MaxB)
	w[10] = uint64(s.Spans)
	w[11] = uint64(s.SpanDropped)
}

func decodeSnap(w *[snapWords]uint64) Snapshot {
	return Snapshot{
		Step:        int64(w[0]),
		DT:          math.Float64frombits(w[1]),
		CFL:         math.Float64frombits(w[2]),
		DivB:        math.Float64frombits(w[3]),
		Mass:        math.Float64frombits(w[4]),
		KineticE:    math.Float64frombits(w[5]),
		MagneticE:   math.Float64frombits(w[6]),
		InternalE:   math.Float64frombits(w[7]),
		MaxV:        math.Float64frombits(w[8]),
		MaxB:        math.Float64frombits(w[9]),
		Spans:       int64(w[10]),
		SpanDropped: int64(w[11]),
	}
}

// RankPub is one rank's snapshot slot: a seqlock over a double buffer.
// The sequence word counts completed publishes; publish n writes slot
// n&1, so a reader holding sequence n copies a slot the writer will
// not touch until publish n+1 — and if that overlaps, the re-check
// catches it. One writer (the rank goroutine), any number of readers.
type RankPub struct {
	seq   atomic.Uint64
	slots [2][snapWords]atomic.Uint64
}

// Publish stores the snapshot: a fixed number of atomic word stores,
// no allocation, no locks, no clock (pinned by BENCH_obs.json and the
// det-purity analyzer). Nil-safe: a nil receiver is a no-op.
func (p *RankPub) Publish(s Snapshot) {
	if p == nil {
		return
	}
	var w [snapWords]uint64
	s.encode(&w)
	n := p.seq.Load() // single writer: no one else advances seq
	slot := &p.slots[(n+1)&1]
	for i := range w {
		slot[i].Store(w[i])
	}
	p.seq.Store(n + 1)
}

// Read returns the latest published snapshot, or ok=false if nothing
// was published yet. Lock-free: a read racing a publish retries until
// it copies a slot whose sequence held still.
func (p *RankPub) Read() (Snapshot, bool) {
	if p == nil {
		return Snapshot{}, false
	}
	for {
		n := p.seq.Load()
		if n == 0 {
			return Snapshot{}, false
		}
		slot := &p.slots[n&1]
		var w [snapWords]uint64
		for i := range w {
			w[i] = slot[i].Load()
		}
		if p.seq.Load() == n {
			return decodeSnap(&w), true
		}
	}
}

// Seq returns the number of completed publishes (0 = never published).
func (p *RankPub) Seq() uint64 {
	if p == nil {
		return 0
	}
	return p.seq.Load()
}
