package telemetry

import (
	"sync"
	"testing"
)

// TestPublishReadRoundtrip: what goes in comes out, field for field.
func TestPublishReadRoundtrip(t *testing.T) {
	p := &RankPub{}
	if _, ok := p.Read(); ok {
		t.Fatal("Read reported ok before any publish")
	}
	want := Snapshot{
		Step: 42, DT: 1.5e-3, CFL: 0.21, DivB: 3e-9,
		Mass: 12.5, KineticE: 1.25, MagneticE: 0.5, InternalE: 30,
		MaxV: 2.5, MaxB: 0.75, Spans: 1000, SpanDropped: 7,
	}
	p.Publish(want)
	got, ok := p.Read()
	if !ok {
		t.Fatal("Read not ok after publish")
	}
	if got != want {
		t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", got, want)
	}
	if p.Seq() != 1 {
		t.Fatalf("Seq = %d, want 1", p.Seq())
	}
}

// TestPublishNil: the off switch is a nil receiver.
func TestPublishNil(t *testing.T) {
	var p *RankPub
	p.Publish(Snapshot{Step: 1}) // must not panic
	if _, ok := p.Read(); ok {
		t.Fatal("nil pub read ok")
	}
	if p.Seq() != 0 {
		t.Fatal("nil pub nonzero seq")
	}
}

// TestPublishZeroAlloc pins the step-path contract: a publish (and a
// read) allocates nothing.
func TestPublishZeroAlloc(t *testing.T) {
	p := &RankPub{}
	s := Snapshot{Step: 1, DT: 0.5}
	if n := testing.AllocsPerRun(200, func() {
		s.Step++
		p.Publish(s)
	}); n != 0 {
		t.Fatalf("Publish allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		p.Read()
	}); n != 0 {
		t.Fatalf("Read allocates %v/op, want 0", n)
	}
}

// TestSeqlockTornReads hammers one writer against many readers; every
// read must be internally consistent (all fields derived from Step), a
// torn read would mix generations. Run under -race this also proves
// the all-atomic access discipline.
func TestSeqlockTornReads(t *testing.T) {
	p := &RankPub{}
	stamp := func(step int64) Snapshot {
		f := float64(step)
		return Snapshot{
			Step: step, DT: f, CFL: 2 * f, DivB: 3 * f,
			Mass: 4 * f, KineticE: 5 * f, MagneticE: 6 * f, InternalE: 7 * f,
			MaxV: 8 * f, MaxB: 9 * f, Spans: 10 * step, SpanDropped: 11 * step,
		}
	}
	const steps = 20000
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := int64(1); i <= steps; i++ {
			p.Publish(stamp(i))
		}
	}()
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last int64
			for {
				select {
				case <-done:
					return
				default:
				}
				s, ok := p.Read()
				if !ok {
					continue
				}
				if want := stamp(s.Step); s != want {
					t.Errorf("torn read: %+v, want %+v", s, want)
					return
				}
				if s.Step < last {
					t.Errorf("step went backwards: %d after %d", s.Step, last)
					return
				}
				last = s.Step
			}
		}()
	}
	<-done
	wg.Wait()
	if s, ok := p.Read(); !ok || s.Step != steps {
		t.Fatalf("final read = %+v ok=%v, want step %d", s, ok, steps)
	}
}
