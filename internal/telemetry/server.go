package telemetry

// The embedded HTTP server: /metrics (Prometheus text exposition),
// /progress (campaign JSON), /events (server-sent events tailing the
// bounded mpi.EventLog), /debug/pprof (the standard profiling
// endpoints). Serving is strictly pull: scrapers read shared memory
// the ranks already published; nothing here touches the step path.

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"time"

	"repro/internal/mpi"
)

type server struct {
	http *http.Server
	ln   net.Listener
	stop chan struct{}
}

// Serve binds the plane's HTTP endpoints to addr (host:port; port 0
// picks a free one) and starts the background collector tick. It
// returns the bound address. Nil-safe: a nil plane serves nothing and
// returns an error.
func (p *Plane) Serve(addr string) (string, error) {
	if p == nil {
		return "", fmt.Errorf("telemetry: serve on a nil plane")
	}
	p.mu.Lock()
	already := p.srv != nil
	p.mu.Unlock()
	if already {
		return "", fmt.Errorf("telemetry: plane is already serving")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", p.handleMetrics)
	mux.HandleFunc("/progress", p.handleProgress)
	mux.HandleFunc("/events", p.handleEvents)
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	mux.HandleFunc("/", p.handleIndex)
	s := &server{
		http: &http.Server{Handler: mux},
		ln:   ln,
		stop: make(chan struct{}),
	}
	p.mu.Lock()
	p.srv = s
	p.mu.Unlock()
	go s.http.Serve(ln) //nolint:errcheck — Close tears the listener down
	go p.loop(s.stop)
	return ln.Addr().String(), nil
}

// Addr returns the served address ("" when not serving).
func (p *Plane) Addr() string {
	if p == nil {
		return ""
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.srv == nil {
		return ""
	}
	return p.srv.ln.Addr().String()
}

// Close stops the collector tick and the HTTP server (open SSE streams
// are cut). Safe on a nil or never-served plane.
func (p *Plane) Close() error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	s := p.srv
	p.srv = nil
	p.mu.Unlock()
	if s == nil {
		return nil
	}
	close(s.stop)
	return s.http.Close()
}

// loop is the collector heartbeat: rate/ETA samples and rule
// evaluation at the configured interval, until Close.
func (p *Plane) loop(stop chan struct{}) {
	t := time.NewTicker(p.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			p.tick()
		}
	}
}

func (p *Plane) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	// A scrape is also an evaluation: alert state on /metrics is never
	// staler than the scrape asking for it.
	p.Evaluate()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p.writeMetrics(w)
}

func (p *Plane) handleProgress(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(p.Progress()) //nolint:errcheck — a broken scrape socket is the scraper's problem
}

// sseEvent is the JSON payload of one /events message.
type sseEvent struct {
	AtMS   float64 `json:"at_ms"`
	Kind   string  `json:"kind"`
	Detail string  `json:"detail"`
}

// handleEvents streams the run's event timeline as server-sent events:
// a replay of the retained ring, then live tailing. Message ids are
// total-appended indices, so a reconnecting client can spot gaps.
func (p *Plane) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, ": event stream of run %s\n\n", p.runName())
	fl.Flush()
	var cursor int64
	poll := time.NewTicker(200 * time.Millisecond)
	defer poll.Stop()
	for {
		events := p.Events()
		evs, total := events.Tail(cursor)
		base := total - int64(len(evs))
		for i, ev := range evs {
			if err := writeSSE(w, base+int64(i)+1, ev); err != nil {
				return
			}
		}
		cursor = total
		if len(evs) > 0 {
			fl.Flush()
		}
		select {
		case <-r.Context().Done():
			return
		case <-poll.C:
		}
	}
}

func writeSSE(w http.ResponseWriter, id int64, ev mpi.Event) error {
	data, err := json.Marshal(sseEvent{
		AtMS:   float64(ev.At) / 1e6,
		Kind:   ev.Kind,
		Detail: ev.Detail,
	})
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", id, ev.Kind, data)
	return err
}

func (p *Plane) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "yy telemetry plane — run %s\n\n", p.runName())
	fmt.Fprintln(w, "  /metrics       Prometheus text exposition")
	fmt.Fprintln(w, "  /progress      campaign progress JSON (step, segment, ETA)")
	fmt.Fprintln(w, "  /events        server-sent event stream of the fault timeline")
	fmt.Fprintln(w, "  /debug/pprof/  live CPU/heap/goroutine profiles")
}
