package telemetry

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/mpi"
	"repro/internal/obs"
)

// servePlane spins up a plane on a loopback port with one published
// rank and an attached event log, and tears it down with the test.
func servePlane(t *testing.T) (*Plane, string, *mpi.EventLog) {
	t.Helper()
	p := New(Config{Interval: 50 * time.Millisecond})
	events := mpi.NewEventLog()
	p.Attach(Campaign{Run: "testrun", TotalSteps: 100, Events: events, Recorder: obs.New(obs.Config{})})
	p.Rank(0).Publish(Snapshot{Step: 7, DT: 0.5, DivB: 1e-9, KineticE: 1, MagneticE: 2, InternalE: 3})
	p.Rank(1).Publish(Snapshot{Step: 6, DT: 0.5})
	p.Commit(5)
	addr, err := p.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p, addr, events
}

func scrape(t *testing.T, url string) (string, *http.Response) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: %s", url, resp.Status)
	}
	return string(body), resp
}

// TestServeMetrics: the exposition carries the progress, rank, energy
// and event families with the published values.
func TestServeMetrics(t *testing.T) {
	_, addr, _ := servePlane(t)
	body, resp := scrape(t, "http://"+addr+"/metrics")
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q, want the 0.0.4 exposition", ct)
	}
	for _, want := range []string{
		"yy_progress_committed_step 5",
		"yy_progress_total_steps 100",
		`yy_rank_step{rank="0"} 7`,
		`yy_rank_step{rank="1"} 6`,
		`yy_energy{component="magnetic"} 2`,
		"yy_events_total",
		"# TYPE yy_rank_dt gauge",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition lacks %q", want)
		}
	}
	// Every sample line's family is declared before it.
	typed := map[string]bool{}
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			typed[strings.Fields(line)[2]] = true
		} else if line != "" && !strings.HasPrefix(line, "#") {
			name := line[:strings.IndexAny(line, "{ ")]
			if !typed[name] {
				t.Errorf("sample %s precedes its TYPE", name)
			}
		}
	}
}

// TestServeProgress: the JSON document reflects counters and rank rows.
func TestServeProgress(t *testing.T) {
	_, addr, _ := servePlane(t)
	body, resp := scrape(t, "http://"+addr+"/progress")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var info ProgressInfo
	if err := json.Unmarshal([]byte(body), &info); err != nil {
		t.Fatalf("progress JSON: %v\n%s", err, body)
	}
	if info.Run != "testrun" || info.CommittedStep != 5 || info.LiveStep != 7 || info.TotalSteps != 100 {
		t.Fatalf("progress = %+v", info)
	}
	if len(info.Ranks) != 2 || info.Ranks[0].Rank != 0 || info.Ranks[1].Rank != 1 {
		t.Fatalf("rank rows = %+v", info.Ranks)
	}
}

// TestServeEvents: the SSE stream replays retained events and tails
// new ones, with total-appended ids.
func TestServeEvents(t *testing.T) {
	_, addr, events := servePlane(t)
	events.Notef("note", "first")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	events.Notef("fault.kill", "rank=1 step=3")
	sc := bufio.NewScanner(resp.Body)
	var kinds []string
	for sc.Scan() && len(kinds) < 2 {
		if line := sc.Text(); strings.HasPrefix(line, "event: ") {
			kinds = append(kinds, line[len("event: "):])
		}
	}
	if len(kinds) < 2 || kinds[0] != "note" || kinds[1] != "fault.kill" {
		t.Fatalf("streamed kinds = %v", kinds)
	}
}

// TestServePprofIndex: the standard profiling endpoints are mounted.
func TestServePprofIndex(t *testing.T) {
	_, addr, _ := servePlane(t)
	body, _ := scrape(t, "http://"+addr+"/debug/pprof/")
	if !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index did not render:\n%.200s", body)
	}
}

// TestServeTwiceRejected: one server per plane.
func TestServeTwiceRejected(t *testing.T) {
	p, _, _ := servePlane(t)
	if _, err := p.Serve("127.0.0.1:0"); err == nil {
		t.Fatal("second Serve succeeded")
	}
}

// TestNilPlaneEndpoints: nil is off everywhere on the collector side
// too.
func TestNilPlane(t *testing.T) {
	var p *Plane
	if _, err := p.Serve("127.0.0.1:0"); err == nil {
		t.Fatal("nil plane served")
	}
	p.Attach(Campaign{Run: "x"})
	p.SegmentStart(1, 0)
	p.Commit(1)
	p.Retry()
	p.Finish(1)
	p.Evaluate()
	if p.Rank(0) != nil {
		t.Fatal("nil plane returned a pub")
	}
	if got := p.Progress(); got.Run != "" {
		t.Fatalf("nil plane progress = %+v", got)
	}
	if p.Addr() != "" || p.Close() != nil || p.Alerts() != nil {
		t.Fatal("nil plane leaked state")
	}
	if p.ProfileSegments() {
		t.Fatal("nil plane wants profiles")
	}
}

// TestSegProfiler: the bracket captures a non-empty pprof blob and a
// second holder degrades instead of panicking.
func TestSegProfiler(t *testing.T) {
	sp := StartSegProfile()
	inner := StartSegProfile() // profiler busy: must degrade
	if got := inner.Stop(); got != nil {
		t.Fatalf("degraded profiler returned %d bytes", len(got))
	}
	busy := 0.0
	for i := 0; i < 1e6; i++ {
		busy += float64(i)
	}
	_ = busy
	data := sp.Stop()
	if len(data) == 0 {
		t.Fatal("active profiler returned no data")
	}
	if sp.Stop() != nil {
		t.Fatal("second Stop returned data")
	}
	var nilSP *SegProfiler
	if nilSP.Stop() != nil {
		t.Fatal("nil profiler returned data")
	}
	if len(HeapProfile()) == 0 {
		t.Fatal("heap profile empty")
	}
}
