package viz

import (
	"math"

	"repro/internal/coords"
)

// Tracer integrates massless particles along the sampled velocity field
// — the tool behind streamline views like Fig. 2(b)'s tilted look at the
// convection columns. Particles advect with second-order midpoint steps
// in Cartesian space; a particle that leaves the shell is frozen where
// it crossed.
type Tracer struct {
	s *Sampler
}

// NewTracer builds a tracer over a sampler's state.
func NewTracer(s *Sampler) *Tracer { return &Tracer{s: s} }

// velocityAt samples the geographic Cartesian velocity at a Cartesian
// point; ok reports whether the point is inside the shell.
func (tr *Tracer) velocityAt(c coords.Cartesian) (coords.Cartesian, bool) {
	sp := c.ToSpherical()
	vx, ok := tr.s.SampleAt(VCartX, sp.R, sp.Theta, sp.Phi)
	if !ok {
		return coords.Cartesian{}, false
	}
	vy, _ := tr.s.SampleAt(VCartY, sp.R, sp.Theta, sp.Phi)
	vz, _ := tr.s.SampleAt(VCartZ, sp.R, sp.Theta, sp.Phi)
	return coords.Cartesian{X: vx, Y: vy, Z: vz}, true
}

// Path integrates a particle from start for n steps of size dt and
// returns the visited points (including the start). Integration stops
// early if the particle exits the shell.
func (tr *Tracer) Path(start coords.Cartesian, dt float64, n int) []coords.Cartesian {
	path := make([]coords.Cartesian, 0, n+1)
	path = append(path, start)
	c := start
	for step := 0; step < n; step++ {
		v1, ok := tr.velocityAt(c)
		if !ok {
			break
		}
		mid := coords.Cartesian{X: c.X + 0.5*dt*v1.X, Y: c.Y + 0.5*dt*v1.Y, Z: c.Z + 0.5*dt*v1.Z}
		v2, ok := tr.velocityAt(mid)
		if !ok {
			break
		}
		c = coords.Cartesian{X: c.X + dt*v2.X, Y: c.Y + dt*v2.Y, Z: c.Z + dt*v2.Z}
		if r := math.Sqrt(c.X*c.X + c.Y*c.Y + c.Z*c.Z); r < tr.s.sv.Spec.RI || r > tr.s.sv.Spec.RO {
			break
		}
		path = append(path, c)
	}
	return path
}

// PathLength returns the arc length of a path.
func PathLength(path []coords.Cartesian) float64 {
	var s float64
	for i := 1; i < len(path); i++ {
		dx := path[i].X - path[i-1].X
		dy := path[i].Y - path[i-1].Y
		dz := path[i].Z - path[i-1].Z
		s += math.Sqrt(dx*dx + dy*dy + dz*dz)
	}
	return s
}

// DrawPathsEquatorial renders a set of tracer paths projected onto the
// equatorial plane into an n x n image (path pixels get value +1 or -1
// by the particle's sense of circulation; the shell mask is set). This
// is the streamline view of Fig. 2(b): columns appear as closed loops.
func DrawPathsEquatorial(s *Sampler, paths [][]coords.Cartesian, n int) *Image {
	im := NewImage(n, n)
	ro := s.sv.Spec.RO
	ri := s.sv.Spec.RI
	// Mask the annulus.
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			px := (2*float64(x)/float64(n-1) - 1) * ro
			py := (2*float64(y)/float64(n-1) - 1) * ro
			r := math.Hypot(px, py)
			im.Mask[y*n+x] = r >= ri && r <= ro
		}
	}
	toPix := func(v float64) int {
		return int((v/ro + 1) / 2 * float64(n-1))
	}
	for _, path := range paths {
		if len(path) < 2 {
			continue
		}
		// Sense of circulation about the axis from the first segment.
		c0, c1 := path[0], path[1]
		cross := c0.X*c1.Y - c0.Y*c1.X
		v := 1.0
		if cross < 0 {
			v = -1
		}
		for _, c := range path {
			x, y := toPix(c.X), toPix(c.Y)
			if x >= 0 && x < n && y >= 0 && y < n {
				im.Data[y*n+x] = v
			}
		}
	}
	return im
}

// SeedEquatorialRing returns m tracer start points on a ring of radius r
// in the equatorial plane.
func SeedEquatorialRing(r float64, m int) []coords.Cartesian {
	out := make([]coords.Cartesian, m)
	for i := range out {
		phi := 2 * math.Pi * float64(i) / float64(m)
		out[i] = coords.Cartesian{X: r * math.Cos(phi), Y: r * math.Sin(phi)}
	}
	return out
}
