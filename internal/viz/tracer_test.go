package viz

import (
	"math"
	"testing"

	"repro/internal/coords"
	"repro/internal/grid"
	"repro/internal/mhd"
)

// rigidRotationSolver builds a solver whose velocity field is a solid
// rotation about the geographic z axis with unit angular velocity,
// imposed directly on the state (rho = 1, f = v).
func rigidRotationSolver(t *testing.T) *mhd.Solver {
	t.Helper()
	prm := mhd.Params{Gamma: 5. / 3., TIn: 1}
	sv, err := mhd.NewSolver(grid.NewSpec(17, 25), prm, mhd.InitialConditions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, pl := range sv.Panels {
		p := pl.Patch
		nrP, ntP, npP := p.Padded()
		axis := coords.Cartesian{Z: 1}
		if p.Panel == grid.Yang {
			axis = coords.YinYang(axis)
		}
		for k := 0; k < npP; k++ {
			for j := 0; j < ntP; j++ {
				for i := 0; i < nrP; i++ {
					pos := coords.Spherical{R: p.R[i], Theta: p.Theta[j], Phi: p.Phi[k]}.ToCartesian()
					u := coords.Cartesian{
						X: axis.Y*pos.Z - axis.Z*pos.Y,
						Y: axis.Z*pos.X - axis.X*pos.Z,
						Z: axis.X*pos.Y - axis.Y*pos.X,
					}
					uv := coords.CartToSphVec(p.Theta[j], p.Phi[k], u)
					pl.U.Rho.Set(i, j, k, 1)
					pl.U.F.R.Set(i, j, k, uv.VR)
					pl.U.F.T.Set(i, j, k, uv.VT)
					pl.U.F.P.Set(i, j, k, uv.VP)
				}
			}
		}
	}
	return sv
}

// TestTracerRigidRotation: particles in a solid-rotation field orbit the
// axis at constant cylindrical radius and height, covering the expected
// angle.
func TestTracerRigidRotation(t *testing.T) {
	sv := rigidRotationSolver(t)
	tr := NewTracer(NewSampler(sv))

	start := coords.Cartesian{X: 0.6, Y: 0, Z: 0.25}
	const dt = 0.01
	const steps = 100 // angle = 1 radian
	path := tr.Path(start, dt, steps)
	if len(path) != steps+1 {
		t.Fatalf("path stopped early: %d points", len(path))
	}
	end := path[len(path)-1]
	rho0 := math.Hypot(start.X, start.Y)
	rho1 := math.Hypot(end.X, end.Y)
	if math.Abs(rho1-rho0) > 5e-3 {
		t.Errorf("cylindrical radius drifted: %v -> %v", rho0, rho1)
	}
	if math.Abs(end.Z-start.Z) > 5e-3 {
		t.Errorf("height drifted: %v -> %v", start.Z, end.Z)
	}
	angle := math.Atan2(end.Y, end.X) - math.Atan2(start.Y, start.X)
	if math.Abs(angle-1.0) > 0.02 {
		t.Errorf("swept angle %v, want 1.0", angle)
	}
	// Arc length = rho * angle.
	if l := PathLength(path); math.Abs(l-rho0*1.0) > 0.02 {
		t.Errorf("path length %v, want %v", l, rho0)
	}
}

// TestTracerCrossesPanels: a particle orbiting near the pole lives in
// Yang territory and must still trace a clean circle (the sampler
// switches panels transparently).
func TestTracerCrossesPanels(t *testing.T) {
	sv := rigidRotationSolver(t)
	tr := NewTracer(NewSampler(sv))
	start := coords.Cartesian{X: 0.2, Y: 0, Z: 0.65} // colatitude ~17 degrees
	path := tr.Path(start, 0.01, 150)
	if len(path) != 151 {
		t.Fatalf("path stopped early: %d", len(path))
	}
	for i, c := range path {
		if math.Abs(math.Hypot(c.X, c.Y)-0.2) > 5e-3 || math.Abs(c.Z-0.65) > 5e-3 {
			t.Fatalf("orbit deformed at %d: %+v", i, c)
		}
	}
}

// TestTracerStopsAtWall: a particle pushed out of the shell freezes.
func TestTracerStopsAtWall(t *testing.T) {
	sv := rigidRotationSolver(t)
	// Overwrite with a purely radial outflow.
	for _, pl := range sv.Panels {
		pl.U.F.R.Fill(0.5)
		pl.U.F.T.Fill(0)
		pl.U.F.P.Fill(0)
	}
	tr := NewTracer(NewSampler(sv))
	path := tr.Path(coords.Cartesian{X: 0.9, Y: 0, Z: 0}, 0.05, 100)
	if len(path) > 20 {
		t.Errorf("particle escaped the shell without stopping: %d points", len(path))
	}
}

func TestDrawPathsEquatorial(t *testing.T) {
	sv := rigidRotationSolver(t)
	s := NewSampler(sv)
	tr := NewTracer(s)
	var paths [][]coords.Cartesian
	for _, start := range SeedEquatorialRing(0.6, 6) {
		paths = append(paths, tr.Path(start, 0.02, 80))
	}
	im := DrawPathsEquatorial(s, paths, 96)
	lit := 0
	for i, v := range im.Data {
		if v != 0 {
			lit++
			if !im.Mask[i] {
				t.Fatal("path pixel outside the annulus mask")
			}
		}
	}
	if lit < 50 {
		t.Errorf("only %d path pixels drawn", lit)
	}
	// Rigid rotation about +z is counter-clockwise seen from the north:
	// all paths share one sense.
	for i, v := range im.Data {
		if v < 0 {
			t.Fatalf("unexpected circulation sense at pixel %d", i)
		}
	}
}

func TestSeedEquatorialRing(t *testing.T) {
	pts := SeedEquatorialRing(0.7, 8)
	if len(pts) != 8 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if e := math.Abs(math.Hypot(p.X, p.Y) - 0.7); e > 1e-12 || p.Z != 0 {
			t.Fatalf("bad seed %+v", p)
		}
	}
}
