// Package viz produces the paper's visual artifacts from simulation
// data: the Yin-Yang coverage picture (Fig. 1) and the equatorial-plane
// convection-structure slices with cyclonic/anti-cyclonic column
// detection (Fig. 2), rendered as portable pixmaps.
package viz

import (
	"fmt"
	"io"
	"math"

	"repro/internal/coords"
	"repro/internal/field"
	"repro/internal/grid"
	"repro/internal/mhd"
	"repro/internal/sphops"
)

// Image is a scalar raster with an inside-the-domain mask.
type Image struct {
	W, H int
	Data []float64
	Mask []bool
}

// NewImage allocates a w x h image.
func NewImage(w, h int) *Image {
	return &Image{W: w, H: h, Data: make([]float64, w*h), Mask: make([]bool, w*h)}
}

// At returns the value at (x, y).
func (im *Image) At(x, y int) (float64, bool) {
	i := y*im.W + x
	return im.Data[i], im.Mask[i]
}

// MaxAbs returns the maximum absolute masked value.
func (im *Image) MaxAbs() float64 {
	var m float64
	for i, ok := range im.Mask {
		if ok {
			if a := math.Abs(im.Data[i]); a > m {
				m = a
			}
		}
	}
	return m
}

// Quantity selects what a sampler extracts from the solver state.
type Quantity int

// Sampleable quantities.
// VTheta and VPhi sample the panel-local tangential components (useful
// on the equatorial band, which the Yin panel covers in its own frame);
// the VCart/BCart quantities are geographic Cartesian components,
// rotated per node before interpolation, and are frame-safe everywhere.
const (
	Temperature Quantity = iota
	Density
	Pressure
	VRadial
	VTheta
	VPhi
	VortZ // z component of vorticity, the column marker of Fig. 2
	BRadial
	VCartX
	VCartY
	VCartZ
	BCartX
	BCartY
	BCartZ
)

// Sampler extracts point values of derived quantities from a solver's
// current state; velocity, magnetic field and vorticity are computed
// once at construction.
type Sampler struct {
	sv   *mhd.Solver
	vort [2]*field.Vector
}

// NewSampler builds a sampler over the solver's current state.
func NewSampler(sv *mhd.Solver) *Sampler {
	s := &Sampler{sv: sv}
	for pi, pl := range sv.Panels {
		mhd.ComputeVTB(pl, &pl.U)
		s.vort[pi] = pl.Patch.NewVector()
		sphops.Curl(pl.Patch, pl.V, s.vort[pi], pl.W)
	}
	return s
}

// valueAt returns quantity q at padded node (i, j, k) of panel pi.
func (s *Sampler) valueAt(q Quantity, pi, i, j, k int) float64 {
	pl := s.sv.Panels[pi]
	switch q {
	case Temperature:
		return pl.T.At(i, j, k)
	case Density:
		return pl.U.Rho.At(i, j, k)
	case Pressure:
		return pl.U.P.At(i, j, k)
	case VRadial:
		return pl.V.R.At(i, j, k)
	case VTheta:
		return pl.V.T.At(i, j, k)
	case VPhi:
		return pl.V.P.At(i, j, k)
	case BRadial:
		return pl.B.R.At(i, j, k)
	case VortZ:
		// Convert the local spherical vorticity components to the
		// geographic z component.
		w := s.vort[pi]
		return s.geoCart(pi, i, j, k, w.R.At(i, j, k), w.T.At(i, j, k), w.P.At(i, j, k)).Z
	case VCartX, VCartY, VCartZ:
		c := s.geoCart(pi, i, j, k, pl.V.R.At(i, j, k), pl.V.T.At(i, j, k), pl.V.P.At(i, j, k))
		return pick(c, q-VCartX)
	case BCartX, BCartY, BCartZ:
		c := s.geoCart(pi, i, j, k, pl.B.R.At(i, j, k), pl.B.T.At(i, j, k), pl.B.P.At(i, j, k))
		return pick(c, q-BCartX)
	}
	panic("viz: unknown quantity")
}

// geoCart rotates panel-local spherical vector components at node
// (i, j, k) into geographic Cartesian components.
func (s *Sampler) geoCart(pi, i, j, k int, vr, vt, vp float64) coords.Cartesian {
	p := s.sv.Panels[pi].Patch
	c := coords.SphToCartVec(p.Theta[j], p.Phi[k], coords.SphVec{VR: vr, VT: vt, VP: vp})
	if p.Panel == grid.Yang {
		c = coords.YinYang(c)
	}
	return c
}

func pick(c coords.Cartesian, axis Quantity) float64 {
	switch axis {
	case 0:
		return c.X
	case 1:
		return c.Y
	}
	return c.Z
}

// SampleAt trilinearly samples quantity q at the geographic spherical
// point (r, theta, phi), choosing the panel whose footprint holds the
// point farther from the rim. Returns false outside the shell.
func (s *Sampler) SampleAt(q Quantity, r, theta, phi float64) (float64, bool) {
	spec := s.sv.Spec
	if r < spec.RI || r > spec.RO {
		return 0, false
	}
	// Panel choice.
	tY, pY := coords.YinYangAngles(theta, phi)
	pi := 0
	tt, pp := theta, phi
	inYin := grid.Contains(theta, phi, 0)
	inYang := grid.Contains(tY, pY, 0)
	switch {
	case inYin && inYang:
		if rimDistance(tY, pY) > rimDistance(theta, phi) {
			pi = 1
			tt, pp = tY, pY
		}
	case inYang:
		pi = 1
		tt, pp = tY, pY
	case !inYin:
		return 0, false
	}
	pl := s.sv.Panels[pi]
	p := pl.Patch
	h := p.H
	fi := (r - spec.RI) / p.Dr
	i0 := clampInt(int(math.Floor(fi)), 0, spec.Nr-2)
	ai := fi - float64(i0)

	sample2D := func(i int) float64 {
		return s.angularBilinear(q, pi, i+h, tt, pp)
	}
	v := (1-ai)*sample2D(i0) + ai*sample2D(i0+1)
	return v, true
}

func (s *Sampler) angularBilinear(q Quantity, pi, i int, theta, phi float64) float64 {
	p := s.sv.Panels[pi].Patch
	h := p.H
	fj := (theta - grid.ThetaMin) / p.Dt
	fk := (phi - grid.PhiMin) / p.Dp
	j0 := clampInt(int(math.Floor(fj)), 0, p.Spec.Nt-2)
	k0 := clampInt(int(math.Floor(fk)), 0, p.Spec.Np-2)
	aj := fj - float64(j0)
	ak := fk - float64(k0)
	v00 := s.valueAt(q, pi, i, j0+h, k0+h)
	v10 := s.valueAt(q, pi, i, j0+1+h, k0+h)
	v01 := s.valueAt(q, pi, i, j0+h, k0+1+h)
	v11 := s.valueAt(q, pi, i, j0+1+h, k0+1+h)
	return (1-aj)*(1-ak)*v00 + aj*(1-ak)*v10 + (1-aj)*ak*v01 + aj*ak*v11
}

func rimDistance(theta, phi float64) float64 {
	m := theta - grid.ThetaMin
	if d := grid.ThetaMax - theta; d < m {
		m = d
	}
	if d := phi - grid.PhiMin; d < m {
		m = d
	}
	if d := grid.PhiMax - phi; d < m {
		m = d
	}
	return m
}

func clampInt(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// EquatorialSlice samples quantity q over the equatorial plane onto an
// n x n image spanning [-ro, ro]^2; pixels outside the shell are masked
// out. This regenerates the view of Fig. 2(a)/(c) of the paper.
func EquatorialSlice(s *Sampler, q Quantity, n int) *Image {
	im := NewImage(n, n)
	ro := s.sv.Spec.RO
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			px := (2*float64(x)/float64(n-1) - 1) * ro
			py := (2*float64(y)/float64(n-1) - 1) * ro
			r := math.Hypot(px, py)
			phi := math.Atan2(py, px)
			v, ok := s.SampleAt(q, r, math.Pi/2, phi)
			idx := y*n + x
			im.Data[idx] = v
			im.Mask[idx] = ok
		}
	}
	return im
}

// MeridionalSlice samples quantity q over the phi = phi0 / phi0+pi
// meridional plane onto an n x n image (x axis = cylindrical radius with
// sign, y axis = z).
func MeridionalSlice(s *Sampler, q Quantity, phi0 float64, n int) *Image {
	im := NewImage(n, n)
	ro := s.sv.Spec.RO
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			px := (2*float64(x)/float64(n-1) - 1) * ro
			pz := (2*float64(y)/float64(n-1) - 1) * ro
			r := math.Hypot(px, pz)
			theta := math.Acos(clamp(pz/math.Max(r, 1e-12), -1, 1))
			phi := phi0
			if px < 0 {
				phi = wrapPi(phi0 + math.Pi)
			}
			v, ok := s.SampleAt(q, r, theta, phi)
			idx := y*n + x
			im.Data[idx] = v
			im.Mask[idx] = ok
		}
	}
	return im
}

func wrapPi(p float64) float64 {
	for p > math.Pi {
		p -= 2 * math.Pi
	}
	for p <= -math.Pi {
		p += 2 * math.Pi
	}
	return p
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// CountColumns detects connected components of strong positive and
// negative values on a masked image: the cyclonic and anti-cyclonic
// convection columns of Fig. 2(c). threshold is a fraction of the image
// max-abs; 4-connectivity.
func CountColumns(im *Image, threshold float64) (cyclonic, anticyclonic int) {
	lim := im.MaxAbs() * threshold
	if lim <= 0 {
		return 0, 0
	}
	sign := make([]int8, len(im.Data))
	for i := range im.Data {
		if !im.Mask[i] {
			continue
		}
		switch {
		case im.Data[i] > lim:
			sign[i] = 1
		case im.Data[i] < -lim:
			sign[i] = -1
		}
	}
	seen := make([]bool, len(sign))
	var stack []int
	for start := range sign {
		if sign[start] == 0 || seen[start] {
			continue
		}
		s0 := sign[start]
		stack = append(stack[:0], start)
		seen[start] = true
		size := 0
		for len(stack) > 0 {
			i := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			size++
			x, y := i%im.W, i/im.W
			for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
				nx, ny := x+d[0], y+d[1]
				if nx < 0 || nx >= im.W || ny < 0 || ny >= im.H {
					continue
				}
				ni := ny*im.W + nx
				if !seen[ni] && sign[ni] == s0 {
					seen[ni] = true
					stack = append(stack, ni)
				}
			}
		}
		// Ignore speckles smaller than a few pixels.
		if size >= 4 {
			if s0 > 0 {
				cyclonic++
			} else {
				anticyclonic++
			}
		}
	}
	return cyclonic, anticyclonic
}

// WritePPM renders the image with a blue-white-red diverging map
// (masked pixels black) as a binary PPM.
func WritePPM(w io.Writer, im *Image) error {
	if _, err := fmt.Fprintf(w, "P6\n%d %d\n255\n", im.W, im.H); err != nil {
		return err
	}
	scale := im.MaxAbs()
	if scale <= 0 {
		scale = 1
	}
	buf := make([]byte, 0, im.W*im.H*3)
	for i := range im.Data {
		if !im.Mask[i] {
			buf = append(buf, 0, 0, 0)
			continue
		}
		v := clamp(im.Data[i]/scale, -1, 1)
		var r, g, b float64
		if v >= 0 {
			r, g, b = 1, 1-v, 1-v
		} else {
			r, g, b = 1+v, 1+v, 1
		}
		buf = append(buf, byte(r*255), byte(g*255), byte(b*255))
	}
	_, err := w.Write(buf)
	return err
}

// CoverageMap rasterizes panel coverage on a lon-lat grid: 1 = Yin only,
// 2 = Yang only, 3 = overlap. With the basic Yin-Yang grid no cell is 0.
// It regenerates Fig. 1(b) quantitatively; OverlapPixelFraction compares
// against the analytic ~6%.
func CoverageMap(nLat, nLon int) *Image {
	im := NewImage(nLon, nLat)
	for y := 0; y < nLat; y++ {
		theta := (float64(y) + 0.5) * math.Pi / float64(nLat)
		for x := 0; x < nLon; x++ {
			phi := -math.Pi + (float64(x)+0.5)*2*math.Pi/float64(nLon)
			var v float64
			if grid.Contains(theta, phi, 0) {
				v += 1
			}
			tY, pY := coords.YinYangAngles(theta, phi)
			if grid.Contains(tY, pY, 0) {
				v += 2
			}
			idx := y*nLon + x
			im.Data[idx] = v
			im.Mask[idx] = v > 0
		}
	}
	return im
}

// OverlapPixelFraction integrates the overlap area fraction of a
// coverage map with sin(theta) weights.
func OverlapPixelFraction(im *Image) float64 {
	var overlap, total float64
	for y := 0; y < im.H; y++ {
		w := math.Sin((float64(y) + 0.5) * math.Pi / float64(im.H))
		for x := 0; x < im.W; x++ {
			total += w
			//yyvet:ignore float-eq coverage codes are small integers assigned exactly; 3 marks Yin+Yang overlap
			if im.Data[y*im.W+x] == 3 {
				overlap += w
			}
		}
	}
	return overlap / total
}
