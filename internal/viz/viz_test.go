package viz

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/mhd"
)

func convectionSolver(t *testing.T, steps int) *mhd.Solver {
	t.Helper()
	sv, err := mhd.NewSolver(grid.NewSpec(13, 13), mhd.Default(), mhd.DefaultIC())
	if err != nil {
		t.Fatal(err)
	}
	dt := sv.EstimateDT(0.3)
	for n := 0; n < steps; n++ {
		sv.Advance(dt)
	}
	return sv
}

// TestCoverageMap: every pixel of the sphere is covered; the overlap
// fraction matches the analytic ~6% of Fig. 1.
func TestCoverageMap(t *testing.T) {
	im := CoverageMap(180, 360)
	for i, v := range im.Data {
		if v == 0 {
			t.Fatalf("uncovered pixel %d", i)
		}
	}
	frac := OverlapPixelFraction(im)
	want := grid.OverlapFraction()
	if math.Abs(frac-want) > 0.005 {
		t.Errorf("overlap fraction %v, want %v", frac, want)
	}
}

// TestSampleTemperatureProfile: sampling the conduction state recovers
// the radial profile anywhere on the sphere, across panel boundaries.
func TestSampleTemperatureProfile(t *testing.T) {
	prm := mhd.Default()
	sv, err := mhd.NewSolver(grid.NewSpec(17, 17), prm,
		mhd.InitialConditions{PerturbAmp: 0, SeedBAmp: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSampler(sv)
	pf := mhd.NewProfile(prm, sv.Spec.RI, sv.Spec.RO)
	var m float64
	for _, pt := range [][3]float64{
		{0.5, 1.0, 0.3},
		{0.7, 0.2, 2.8}, // near the geographic pole: Yang territory
		{0.9, math.Pi / 2, -3.0},
		{0.4, 2.9, 0.0}, // south polar region
		{0.6, math.Pi / 2, math.Pi},
	} {
		got, ok := s.SampleAt(Temperature, pt[0], pt[1], pt[2])
		if !ok {
			t.Fatalf("point %v not sampled", pt)
		}
		if e := math.Abs(got - pf.T(pt[0])); e > m {
			m = e
		}
	}
	if m > 5e-3 {
		t.Errorf("temperature sampling error %g", m)
	}
	if _, ok := s.SampleAt(Temperature, 0.1, 1, 1); ok {
		t.Error("inside the inner core should not sample")
	}
}

func TestEquatorialSliceMask(t *testing.T) {
	sv := convectionSolver(t, 0)
	s := NewSampler(sv)
	im := EquatorialSlice(s, Density, 64)
	// Center pixel: r ~ 0 -> masked out; rim of the square: r > ro ->
	// masked out... the corners exceed ro.
	if _, ok := im.At(32, 32); ok {
		t.Error("center (inner core) should be masked")
	}
	if _, ok := im.At(0, 0); ok {
		t.Error("corner (outside shell) should be masked")
	}
	// Mid-radius pixel inside.
	if v, ok := im.At(32+20, 32); !ok || v <= 0 {
		t.Errorf("mid-radius density = %v ok=%v", v, ok)
	}
}

func TestMeridionalSlice(t *testing.T) {
	sv := convectionSolver(t, 0)
	s := NewSampler(sv)
	im := MeridionalSlice(s, Temperature, 0.5, 48)
	any := false
	for i := range im.Mask {
		if im.Mask[i] && im.Data[i] > 0 {
			any = true
		}
	}
	if !any {
		t.Error("empty meridional slice")
	}
}

// TestVorticityColumns: after some convection spin-up, the equatorial
// vorticity slice shows alternating cyclonic and anti-cyclonic columns
// (Fig. 2(c)/(d)).
func TestVorticityColumns(t *testing.T) {
	sv := convectionSolver(t, 60)
	s := NewSampler(sv)
	im := EquatorialSlice(s, VortZ, 96)
	if im.MaxAbs() == 0 {
		t.Fatal("no vorticity after spin-up")
	}
	cyc, anti := CountColumns(im, 0.1)
	if cyc+anti < 2 {
		t.Errorf("columns: %d cyclonic, %d anti-cyclonic; want at least 2 total", cyc, anti)
	}
}

// TestCountColumnsSynthetic: two blobs of opposite sign plus a speckle.
func TestCountColumnsSynthetic(t *testing.T) {
	im := NewImage(32, 32)
	for i := range im.Mask {
		im.Mask[i] = true
	}
	put := func(cx, cy, rad int, v float64) {
		for y := cy - rad; y <= cy+rad; y++ {
			for x := cx - rad; x <= cx+rad; x++ {
				im.Data[y*32+x] = v
			}
		}
	}
	put(8, 8, 2, 1.0)
	put(24, 24, 2, -1.0)
	im.Data[16*32+16] = 0.9 // single-pixel speckle: ignored
	cyc, anti := CountColumns(im, 0.5)
	if cyc != 1 || anti != 1 {
		t.Errorf("counts = (%d, %d), want (1, 1)", cyc, anti)
	}
	empty := NewImage(8, 8)
	if c, a := CountColumns(empty, 0.5); c != 0 || a != 0 {
		t.Errorf("empty image counts (%d,%d)", c, a)
	}
}

func TestWritePPM(t *testing.T) {
	im := NewImage(10, 6)
	for i := range im.Data {
		im.Data[i] = float64(i%5) - 2
		im.Mask[i] = i%7 != 0
	}
	var buf bytes.Buffer
	if err := WritePPM(&buf, im); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	want := []byte("P6\n10 6\n255\n")
	if !bytes.HasPrefix(b, want) {
		t.Fatalf("bad header %q", b[:len(want)])
	}
	if len(b) != len(want)+10*6*3 {
		t.Errorf("payload size %d", len(b)-len(want))
	}
	// First pixel is masked -> black.
	px := b[len(want):]
	if px[0] != 0 || px[1] != 0 || px[2] != 0 {
		t.Error("masked pixel not black")
	}
}

// TestDoubleSolutionInvisibleInSlice: the paper notes the Yin-Yang
// internal border leaves no visible seam. Quantify: the equatorial
// temperature slice of a smooth state has no pixel-to-pixel jump larger
// than a few times the typical gradient step.
func TestDoubleSolutionInvisibleInSlice(t *testing.T) {
	sv := convectionSolver(t, 6)
	s := NewSampler(sv)
	im := EquatorialSlice(s, Temperature, 128)
	var maxJump, typJump float64
	n := 0
	for y := 0; y < im.H; y++ {
		for x := 1; x < im.W; x++ {
			a, okA := im.At(x-1, y)
			b, okB := im.At(x, y)
			if !okA || !okB {
				continue
			}
			j := math.Abs(a - b)
			if j > maxJump {
				maxJump = j
			}
			typJump += j
			n++
		}
	}
	typJump /= float64(n)
	if maxJump > 25*typJump {
		t.Errorf("visible seam: max jump %g vs typical %g", maxJump, typJump)
	}
}
