#!/bin/sh
# The full verification gate for this repository. Tier-1 verify
# (ROADMAP.md) is this script; it supersedes the bare
# `go build && go test` of the seed.
#
#   1. go build      — everything compiles
#   2. go vet        — the standard toolchain analyzers
#   3. yyvet         — the repo-specific invariant analyzers
#                      (internal/analyze), run package-parallel:
#                      per-function walks (irecv-wait, pow2-stride,
#                      float-eq, cond-wait-loop, abort-on-err,
#                      runwith-deadline, span-end, det-purity,
#                      pool-disjoint, typed-err, overlap-order,
#                      atomic-artifact) plus the interprocedural
#                      passes (tag-space, buf-lifetime) and the
#                      directive audit (ignore-audit)
#   4. go test       — the full test suite; the explicit -timeout turns
#                      any residual runtime wedge into a stack-dumped
#                      failure instead of a hung CI job
#   5. go test -race — the goroutine MPI runtime and its users under
#                      the race detector, plus the intra-rank worker
#                      pool (internal/par), the chaos harness and the
#                      pooled-kernel + halo-exchange stress test in
#                      internal/decomp
#   6. yychaos       — the seeded chaos smoke: randomized fault
#                      schedules over full solver runs (liveness,
#                      golden-checkpoint safety, campaign
#                      recoverability), then the committed regression
#                      corpora replayed for their recorded verdicts —
#                      the base corpus plus the rank-replacement
#                      corpus (kill -> heartbeat confirm -> surgical
#                      respawn, final state byte-equal to golden) and
#                      the store-fault corpus (torn writes, bit rot,
#                      ENOSPC, crash points against the run ledger,
#                      through detect -> scrub -> re-derive).
#                      Violating scenarios drop postmortem + event
#                      timeline (or verify + scrub report) artifacts
#                      into CHAOS_ART for CI to upload
#   7. traced smoke  — a 2-rank run with -trace and -runreport on,
#                      proving the observability path exports a valid
#                      Perfetto trace and run report end to end
#   8. telemetry smoke — a live 2-rank campaign with a scripted silent
#                      rank death, served over -telemetry and scraped
#                      by yywatch while it runs: the Prometheus
#                      exposition must parse and the injected fault
#                      must surface as a latched rank-dead alert
#   9. store smoke   — a store-backed campaign (yycore -store) audited
#                      offline with yystore verify and gc: the ledger
#                      chain, Merkle roots and anchor must come back
#                      clean, and GC must keep every ledger-reachable
#                      object
#  10. step gate     — the fused-RHS speedup gate: the committed
#                      BENCH_kernels.json step section must claim
#                      >=2x over the pre-fusion baseline, and a live
#                      fused-vs-reference re-measure must not collapse
#  11. store gate    — the run-ledger write-path gate: the dedup blob
#                      write (the steady-state shape of deterministic
#                      reruns) must stay allocation-free against the
#                      committed BENCH_store.json
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

# -p 0 sizes the analysis pool to GOMAXPROCS; CI can cap it by
# exporting YYVET_PROCS. -json feeds the CI artifact when YYVET_JSON is
# set (the plain lines still go to the log either way).
echo "==> go run ./cmd/yyvet -p \${YYVET_PROCS:-0} ./..."
go run ./cmd/yyvet -p "${YYVET_PROCS:-0}" ${YYVET_JSON:+-json "$YYVET_JSON"} ${YYVET_GITHUB:+-github} ./...

echo "==> go test -timeout 120s ./..."
go test -timeout 120s ./...

echo "==> go test -race -timeout 240s ./internal/mpi ./internal/decomp ./internal/overset ./internal/resilience ./internal/par ./internal/chaos ./internal/obs ./internal/store ./internal/telemetry"
go test -race -timeout 240s ./internal/mpi ./internal/decomp ./internal/overset ./internal/resilience ./internal/par ./internal/chaos ./internal/obs ./internal/store ./internal/telemetry

# Violating chaos scenarios leave their postmortem.txt and event
# timeline under $chaos_art; CI exports CHAOS_ART and uploads the
# directory as an artifact when the gate fails.
chaos_art="${CHAOS_ART:-$(mktemp -d)}"
echo "==> chaos smoke: go run ./cmd/yychaos -seeds 25 -steps 5 -artifacts $chaos_art"
go run ./cmd/yychaos -seeds 25 -steps 5 -artifacts "$chaos_art"

echo "==> chaos corpus replay: go run ./cmd/yychaos -corpus internal/chaos/testdata/corpus.json"
go run ./cmd/yychaos -corpus internal/chaos/testdata/corpus.json -artifacts "$chaos_art"

echo "==> chaos replacement corpus: go run ./cmd/yychaos -corpus internal/chaos/testdata/corpus_replace.json"
go run ./cmd/yychaos -corpus internal/chaos/testdata/corpus_replace.json -artifacts "$chaos_art"

echo "==> chaos store corpus: go run ./cmd/yychaos -store-corpus internal/chaos/testdata/corpus_store.json"
go run ./cmd/yychaos -store-corpus internal/chaos/testdata/corpus_store.json -artifacts "$chaos_art"

obs_out="${OBS_OUT:-$(mktemp -d)}"
echo "==> traced smoke: go run ./cmd/yycore -nr 9 -nt 13 -steps 4 -every 2 -procs 2 -trace $obs_out/trace.json -runreport $obs_out/report.txt"
go run ./cmd/yycore -nr 9 -nt 13 -steps 4 -every 2 -procs 2 \
	-trace "$obs_out/trace.json" -runreport "$obs_out/report.txt"
go run ./cmd/yytrace -summary "$obs_out/trace.json" > "$obs_out/summary.txt"
grep -q "Span Coverage" "$obs_out/report.txt"

# A live 2-rank campaign with a scripted silent rank death: yycore
# serves /metrics, /progress, /events and /debug/pprof while the
# campaign runs; yywatch follows it to completion, then validates that
# the exposition parses and that the injected fault surfaced as a
# latched rank-dead alert (exit 1 if the alarm never fired, exit 2 if
# the scrape itself is broken). -linger keeps the server up for the
# post-run checks; the watcher reads the :0-bound address from the
# addr file.
tele_out="${TELE_OUT:-$(mktemp -d)}"
echo "==> telemetry smoke: yycore -campaign -telemetry + silent kill, scraped live by yywatch"
go build -o "$tele_out/yycore" ./cmd/yycore
go build -o "$tele_out/yywatch" ./cmd/yywatch
"$tele_out/yycore" -nr 9 -nt 13 -steps 6 -procs 2 -campaign "$tele_out/camp" -ckpt-every 2 \
	-hb 5ms -inject-kill-silent 1@2 \
	-telemetry 127.0.0.1:0 -telemetry-addr-file "$tele_out/addr" -linger 120s \
	>"$tele_out/yycore.log" 2>&1 &
tele_pid=$!
"$tele_out/yywatch" -addr-file "$tele_out/addr" -interval 200ms -timeout 90s
# Keep the scraped exposition and final progress line as CI artifacts
# next to the yycore log, then assert on them.
"$tele_out/yywatch" -addr-file "$tele_out/addr" -metrics >"$tele_out/metrics.txt"
"$tele_out/yywatch" -addr-file "$tele_out/addr" -once >"$tele_out/progress.txt"
"$tele_out/yywatch" -addr-file "$tele_out/addr" -check -expect-alert rank-dead
kill "$tele_pid" 2>/dev/null || true
wait "$tele_pid" 2>/dev/null || true

store_dir="${STORE_OUT:-$(mktemp -d)}/run.store"
echo "==> store smoke: go run ./cmd/yycore -nr 9 -nt 13 -steps 4 -ckpt-every 2 -store $store_dir"
go run ./cmd/yycore -nr 9 -nt 13 -steps 4 -ckpt-every 2 -store "$store_dir"
go run ./cmd/yystore -root "$store_dir" verify
go run ./cmd/yystore -root "$store_dir" gc
# Post-GC verify: the sweep must not have collected anything the
# ledger or refs still reach. STORE_REPORT, when exported by CI, gets
# the machine-readable report for upload.
go run ./cmd/yystore -root "$store_dir" verify ${STORE_REPORT:+-o "$STORE_REPORT"}

echo "==> step gate: go run ./cmd/yybench -gate-step BENCH_kernels.json"
go run ./cmd/yybench -gate-step BENCH_kernels.json

echo "==> store gate: go run ./cmd/yybench -gate-store BENCH_store.json"
go run ./cmd/yybench -gate-store BENCH_store.json

echo "==> all checks passed"
